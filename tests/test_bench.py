"""Benchmark harness tests (repro.bench)."""

import json

from repro.bench import (
    BenchSettings,
    check_against_baseline,
    fault_overhead_guard,
    host_noise_warnings,
    obs_overhead_guard,
    run_benches,
)
from repro.bench.harness import save_bench


def _doc(golden_cps, injection_cps=50_000.0, compiled_cps=None):
    golden = {"event": {"cycles_per_sec": golden_cps}}
    if compiled_cps is not None:
        golden["compiled"] = {"cycles_per_sec": compiled_cps}
    return {
        "schema_version": 3,
        "results": {
            "golden": golden,
            "injection": {"event": {"cycles_per_sec": injection_cps}},
        },
    }


class TestBaselineCheck:
    def test_passes_within_tolerance(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_doc(100_000.0)))
        assert check_against_baseline(_doc(80_000.0), base, 0.30) == []

    def test_fails_beyond_tolerance(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_doc(100_000.0)))
        failures = check_against_baseline(_doc(60_000.0), base, 0.30)
        assert len(failures) == 1
        assert "golden" in failures[0]

    def test_missing_scenarios_are_ignored(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_doc(100_000.0)))
        doc = {"schema_version": 3, "results": {}}
        assert check_against_baseline(doc, base, 0.30) == []

    def test_compiled_engine_is_gated_too(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_doc(100_000.0, compiled_cps=150_000.0)))
        doc = _doc(100_000.0, compiled_cps=90_000.0)
        failures = check_against_baseline(doc, base, 0.30)
        assert len(failures) == 1
        assert "golden[compiled]" in failures[0]


class TestHarness:
    def test_golden_scenario_produces_speedup_block(self, tmp_path):
        settings = BenchSettings(
            repeats=1,
            scenarios=("golden",),
            engines=("event", "reference", "compiled"),
        )
        doc = run_benches(settings)
        assert doc["schema_version"] == 3
        entry = doc["results"]["golden"]
        for engine in ("event", "reference", "compiled"):
            assert entry[engine]["cycles"] > 0
            assert entry[engine]["cycles_per_sec"] > 0
        assert entry["speedup_event_vs_reference"] > 0
        assert entry["speedup_compiled_vs_reference"] > 0
        assert entry["speedup_compiled_vs_event"] > 0
        # the golden scenario reports delta-chain storage statistics
        stats = entry["event"]["snapshot_storage"]
        assert stats["checkpoints"] >= 1
        # schema v2: per-phase breakdown (core interp / uncore / snapshot);
        # the reference engine inlines its uncore stage, so it has none
        for engine in ("event", "compiled"):
            phases = entry[engine]["phases"]
            assert phases["total"] > 0
            assert phases["core_interp"] >= 0
            assert phases["uncore"] >= 0
            assert phases["snapshot"] >= 0
        assert "phases" not in entry["reference"]
        # schema v3: every engine carries a repeat-spread summary
        for engine in ("event", "reference", "compiled"):
            got = entry[engine]["spread"]
            assert set(got) == {"min", "median", "max", "stdev"}
            assert got["min"] <= got["median"] <= got["max"]
        path = save_bench(doc, tmp_path / "BENCH_step.json")
        reread = json.loads(path.read_text())
        assert reread["results"]["golden"]["event"]["cycles"] == (
            entry["event"]["cycles"]
        )
        # all engines simulate the same number of cycles
        assert entry["event"]["cycles"] == entry["reference"]["cycles"]
        assert entry["event"]["cycles"] == entry["compiled"]["cycles"]

    def test_cluster_scenario_reports_fabric_comparison(self):
        settings = BenchSettings(
            repeats=1, sweep_runs=1, scenarios=("cluster",)
        )
        doc = run_benches(settings)
        entry = doc["results"]["cluster"]
        assert entry["cells"] == 4
        assert entry["workers"] == 2
        # a fabric comparison, not an engine row: serial vs a 2-worker
        # localhost cluster, each with throughput + repeat spread
        for fabric in ("serial", "cluster_2"):
            assert entry[fabric]["seconds"] > 0
            assert entry[fabric]["cells_per_sec"] > 0
            assert set(entry[fabric]["spread"]) == {
                "min", "median", "max", "stdev",
            }
        assert entry["speedup_cluster_vs_serial"] > 0


class TestHostNoise:
    def _spread_doc(self, stdev):
        return {
            "schema_version": 3,
            "results": {
                "golden": {
                    "event": {
                        "cycles_per_sec": 1.0,
                        "spread": {
                            "min": 0.9, "median": 1.0,
                            "max": 1.4, "stdev": stdev,
                        },
                    }
                }
            },
        }

    def test_quiet_host_produces_no_warnings(self):
        assert host_noise_warnings(self._spread_doc(0.05)) == []

    def test_noisy_host_is_flagged(self):
        warnings = host_noise_warnings(self._spread_doc(0.2))
        assert len(warnings) == 1
        assert "golden[event]" in warnings[0]

    def test_baseline_check_forwards_noise_warnings(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_doc(100_000.0)))
        doc = self._spread_doc(0.2)
        doc["results"]["golden"]["event"]["cycles_per_sec"] = 100_000.0
        seen = []
        assert check_against_baseline(doc, base, 0.30, warn=seen.append) == []
        assert any("noisy host" in line for line in seen)


class TestObsOverheadGuard:
    def test_guard_reports_small_overhead(self):
        """The obs layer must stay near-zero cost when disabled and
        cheap when enabled (CI gates this at 10%; the unit test allows
        headroom against CI-runner noise)."""
        settings = BenchSettings(injections=2, repeats=2)
        guard = obs_overhead_guard(settings)
        assert guard["runs"] >= 2
        assert guard["engine"] == "event"
        assert guard["off_seconds"] > 0
        assert guard["on_seconds"] > 0
        # sanity bound only -- the tight 10% gate runs in CI with a
        # larger sample (repro bench --obs-guard)
        assert guard["overhead"] < 1.0

    def test_guard_restores_obs_state(self):
        from repro import obs

        was = obs.enabled()
        obs_overhead_guard(BenchSettings(injections=2, repeats=1))
        assert obs.enabled() == was


class TestFaultOverheadGuard:
    def test_guard_reports_small_overhead(self):
        """The default SingleBitFlip model path must track the legacy
        inline injection path closely (CI gates this at 5%; the unit
        test allows more headroom against CI-runner noise)."""
        settings = BenchSettings(injections=2, repeats=2)
        guard = fault_overhead_guard(settings)
        assert guard["runs"] == 2
        assert guard["engine"] == "event"
        assert guard["inline_seconds"] > 0
        assert guard["model_seconds"] > 0
        # sanity bound only -- the tight 5% gate runs in CI with a
        # larger sample (repro bench --fault-guard); a 2x2 wall-clock
        # sample here would flake on loaded runners
        assert guard["overhead"] < 1.0

    def test_guard_runs_on_compiled_engine(self):
        settings = BenchSettings(injections=2, repeats=1)
        guard = fault_overhead_guard(settings, engine="compiled")
        assert guard["engine"] == "compiled"
        assert guard["overhead"] < 1.0
