"""Delta snapshot chain tests (repro.system.snapshots).

The chain must be indistinguishable from the dict of full snapshots it
replaced: materialized checkpoints bit-identical to ``Machine.snapshot()``
at the same cycle, restorable at any point, and strictly cheaper to
store than full copies.
"""

import pytest

from repro.mixedmode.platform import CosimConfig, MixedModePlatform
from repro.system.machine import Machine, MachineConfig
from repro.system.snapshots import SnapshotChain
from repro.workloads import build_workload

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)


def _loaded_machine(benchmark="fft", seed=2015, scale=1 / 120_000, engine="event"):
    machine = Machine(CFG, engine=engine)
    machine.load_workload(
        build_workload(
            benchmark, threads=CFG.total_threads, scale=scale, seed=seed
        )
    )
    return machine


@pytest.mark.parametrize("engine", ["event", "reference"])
def test_materialized_checkpoints_equal_full_snapshots(engine):
    machine = _loaded_machine(engine=engine)
    shadow = _loaded_machine(engine=engine)  # identical twin, full snaps
    chain = SnapshotChain(machine)
    interval = 400
    fulls = {}
    chain.checkpoint()
    fulls[0] = shadow.snapshot()
    for _ in range(6):
        machine.run_cycles(interval)
        shadow.run_cycles(interval)
        chain.checkpoint()
        fulls[machine.cycle] = shadow.snapshot()
    chain.finalize()
    assert list(chain) == list(fulls)
    for cycle, full in fulls.items():
        assert chain[cycle] == full, f"checkpoint at cycle {cycle} diverged"


def test_restore_roundtrip_from_any_checkpoint():
    machine = _loaded_machine()
    chain = SnapshotChain(machine)
    chain.checkpoint()
    for _ in range(4):
        machine.run_cycles(300)
        chain.checkpoint()
    chain.finalize()
    final = machine.run()
    for cycle in list(chain):
        machine.restore(chain[cycle])
        assert machine.cycle == cycle
        replay = machine.run()
        assert replay.output == final.output
        assert replay.cycles == final.cycles
        assert replay.retired == final.retired


def test_restore_during_capture_is_rejected():
    machine = _loaded_machine()
    chain = SnapshotChain(machine)
    snap_before = machine.snapshot()
    chain.checkpoint()
    machine.run_cycles(50)
    with pytest.raises(RuntimeError):
        machine.restore(snap_before)
    chain.finalize()
    machine.restore(snap_before)  # fine once capture is closed


def test_non_monotonic_checkpoint_rejected():
    machine = _loaded_machine()
    chain = SnapshotChain(machine)
    chain.checkpoint()
    with pytest.raises(ValueError):
        chain.checkpoint()  # same cycle again
    chain.finalize()


def test_delta_storage_is_smaller_than_full_copies():
    platform = MixedModePlatform(
        "fft", machine_config=CFG, scale=1 / 120_000, seed=2015
    )
    chain = platform.golden.snapshots
    stats = chain.storage_stats()
    assert stats["checkpoints"] == len(chain) > 1
    # DRAM: deltas store written words only, full copies store everything
    assert stats["dram_words_stored"] < stats["dram_words_full"]
    # components: idle banks/MCUs/PCIe skip their per-checkpoint copy
    assert stats["components_stored"] < stats["components_total"]


def test_platform_golden_chain_serves_injection_restores():
    """The golden-isolation contract end-to-end: restoring from the
    chain and replaying produces the golden output again."""
    platform = MixedModePlatform(
        "fft", machine_config=CFG, scale=1 / 120_000, seed=2015
    )
    golden = platform.golden
    cycle, snap = golden.snapshot_at_or_before(golden.cycles // 2)
    assert cycle <= golden.cycles // 2
    machine = platform.machine
    machine.restore(snap)
    machine.run_until_cycle(golden.cycles // 2)
    result = machine.run(hang_factor_cycles=golden.cycles * 4 + 50_000)
    assert result.completed
    assert result.output == golden.output
