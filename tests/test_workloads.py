"""Tests for the 18 benchmark analogues (repro.workloads)."""

import pytest

from repro.system.machine import Machine, MachineConfig
from repro.workloads import (
    ALL_BENCHMARKS,
    PCIE_BENCHMARKS,
    REGISTRY,
    build_workload,
    workload_meta,
)

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)
SCALE = 1.0 / 60_000.0


def run_benchmark(short, pcie=False, seed=2015):
    machine = Machine(CFG)
    machine.load_workload(
        build_workload(short, threads=CFG.total_threads, scale=SCALE, seed=seed),
        pcie_input=pcie,
    )
    return machine, machine.run(max_cycles=2_000_000)


class TestRegistry:
    def test_eighteen_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 18

    def test_suite_counts_match_table5(self):
        suites = {}
        for short in ALL_BENCHMARKS:
            meta = workload_meta(short)
            suites[meta.suite] = suites.get(meta.suite, 0) + 1
        assert suites == {"SPLASH-2": 6, "PARSEC-2.1": 9, "Phoenix": 3}

    def test_twelve_input_file_benchmarks(self):
        """Table 5: 12 applications have an input data file."""
        assert len(PCIE_BENCHMARKS) == 12

    def test_paper_cycle_lengths(self):
        assert workload_meta("barn").paper_cycles == 413_000_000
        assert workload_meta("rayt").paper_cycles == 1_005_000_000
        assert workload_meta("p-lr").paper_cycles == 54_000_000

    def test_input_file_sizes(self):
        assert workload_meta("p-lr").input_file_bytes == 108 * 1024 * 1024
        assert workload_meta("blsc").input_file_bytes == 258 * 1024
        assert workload_meta("fft").input_file_bytes == 0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            workload_meta("nope")
        with pytest.raises(KeyError):
            build_workload("nope")

    def test_minimum_threads(self):
        with pytest.raises(ValueError):
            build_workload("fft", threads=1)


@pytest.mark.parametrize("short", ALL_BENCHMARKS)
class TestEveryBenchmark:
    def test_completes_with_output(self, short):
        _machine, res = run_benchmark(short)
        assert res.completed, (short, res.trap, res.hung)
        assert res.trap is None
        assert res.output, short

    def test_deterministic(self, short):
        _m1, r1 = run_benchmark(short)
        _m2, r2 = run_benchmark(short)
        assert r1.output == r2.output
        assert r1.cycles == r2.cycles


@pytest.mark.parametrize("short", PCIE_BENCHMARKS)
def test_pcie_dma_mode_matches_direct_load(short):
    """The DMA'd input must produce the same application output."""
    _m1, direct = run_benchmark(short, pcie=False)
    m2, dma = run_benchmark(short, pcie=True)
    assert direct.completed and dma.completed
    assert direct.output == dma.output
    start, end = m2.pcie.transfer_window()
    assert end > start >= 0


def test_different_seeds_change_data_not_structure():
    _m1, r1 = run_benchmark("fft", seed=1)
    _m2, r2 = run_benchmark("fft", seed=2)
    assert r1.completed and r2.completed
    assert set(r1.output) == set(r2.output)  # same output slots
    assert r1.output != r2.output  # different data


def test_relative_lengths_roughly_preserved():
    """Longer paper benchmarks stay longer at reproduction scale."""
    cycles = {}
    for short in ("p-lr", "radi", "vips"):
        _m, res = run_benchmark(short)
        cycles[short] = res.cycles
    assert cycles["p-lr"] < cycles["vips"]
    assert cycles["radi"] < cycles["vips"]


def test_scale_changes_length():
    m1 = Machine(CFG)
    m1.load_workload(build_workload("fft", threads=8, scale=1 / 200_000))
    short_run = m1.run()
    m2 = Machine(CFG)
    m2.load_workload(build_workload("fft", threads=8, scale=1 / 30_000))
    long_run = m2.run()
    assert long_run.cycles > short_run.cycles
