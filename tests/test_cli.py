"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.component == "l2c"
        assert args.n == 100

    def test_rejects_unknown_component(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--component", "niu"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "nope"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "31675" in out

    def test_run(self, capsys):
        rc = main([
            "run", "--benchmark", "radi", "--cores", "2",
            "--threads-per-core", "2", "--scale", "2e-5",
        ])
        assert rc == 0
        assert "completed=True" in capsys.readouterr().out

    def test_small_campaign(self, capsys):
        rc = main([
            "campaign", "--benchmark", "fft", "--component", "l2c",
            "--n", "3", "--cores", "2", "--threads-per-core", "2",
            "--scale", "5e-6",
        ])
        assert rc == 0
        assert "campaign" in capsys.readouterr().out.lower()

    def test_small_qrr(self, capsys):
        rc = main([
            "qrr", "--benchmark", "fft", "--component", "l2c",
            "--n", "2", "--cores", "2", "--threads-per-core", "2",
            "--scale", "5e-6",
        ])
        assert rc == 0
