"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main

SMALL = ["--cores", "2", "--threads-per-core", "2", "--scale", "5e-6"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.component == "l2c"
        assert args.n == 100

    def test_rejects_unknown_component(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--component", "niu"])

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "nope"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "31675" in out

    def test_run(self, capsys):
        rc = main([
            "run", "--benchmark", "radi", "--cores", "2",
            "--threads-per-core", "2", "--scale", "2e-5",
        ])
        assert rc == 0
        assert "completed=True" in capsys.readouterr().out

    def test_small_campaign(self, capsys):
        rc = main([
            "campaign", "--benchmark", "fft", "--component", "l2c",
            "--n", "3", "--cores", "2", "--threads-per-core", "2",
            "--scale", "5e-6",
        ])
        assert rc == 0
        assert "campaign" in capsys.readouterr().out.lower()

    def test_small_qrr(self, capsys):
        rc = main([
            "qrr", "--benchmark", "fft", "--component", "l2c",
            "--n", "2", "--cores", "2", "--threads-per-core", "2",
            "--scale", "5e-6",
        ])
        assert rc == 0

    def test_campaign_json_stdout(self, capsys):
        rc = main([
            "campaign", "--benchmark", "fft", "--component", "l2c",
            "--n", "2", *SMALL, "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["component"] == "l2c"
        assert len(payload["records"]) == 2
        assert "outcome_counts" in payload["summary"]

    def test_qrr_json_file(self, capsys, tmp_path):
        out = tmp_path / "qrr.json"
        rc = main([
            "qrr", "--benchmark", "fft", "--component", "l2c",
            "--n", "2", *SMALL, "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["mode"] == "qrr"
        assert payload["summary"]["recovered"] == 2

    def test_small_sweep_json(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--components", "l2c", "mcu",
            "--benchmarks", "fft", "radi", "--n", "2", *SMALL,
            "--json", str(out),
        ])
        assert rc == 0
        assert "sweep" in capsys.readouterr().out.lower()
        payload = json.loads(out.read_text())
        assert len(payload["results"]) == 4
        cells = [
            (r["spec"]["component"], r["spec"]["benchmark"])
            for r in payload["results"]
        ]
        assert cells == [
            ("l2c", "fft"), ("l2c", "radi"), ("mcu", "fft"), ("mcu", "radi"),
        ]

    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("seu", "mbu", "stuck", "flicker", "sram"):
            assert name in out

    def test_campaign_with_fault_json(self, capsys):
        rc = main([
            "campaign", "--benchmark", "fft", "--component", "l2c",
            "--n", "2", *SMALL, "--fault", "mbu:k=3", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["fault"] == "mbu:k=3"
        assert payload["summary"]["fault"] == "mbu:k=3"
        for record in payload["records"]:
            assert record["fault"]["model"] == "mbu"
            assert len(record["fault"]["locations"]) == 3

    def test_campaign_rejects_bad_fault_spec(self, capsys):
        rc = main([
            "campaign", "--benchmark", "fft", "--n", "1", *SMALL,
            "--fault", "cosmic",
        ])
        assert rc == 2
        assert "fault" in capsys.readouterr().err

    def test_sweep_with_fault(self, capsys, tmp_path):
        out = tmp_path / "sweep.json"
        rc = main([
            "sweep", "--components", "l2c", "--benchmarks", "fft",
            "--n", "2", *SMALL, "--fault", "stuck:hold=100",
            "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["grid"]["fault"] == "stuck:hold=100"
        assert payload["results"][0]["spec"]["fault"] == "stuck:hold=100"

    def test_sweep_rejects_fault_outside_injection_mode(self, capsys):
        rc = main([
            "sweep", "--mode", "qrr", "--components", "l2c",
            "--benchmarks", "fft", "--n", "1", *SMALL,
            "--fault", "mbu:k=2",
        ])
        assert rc == 2

    def test_sweep_parallel_matches_serial(self, capsys, tmp_path):
        argv = [
            "sweep", "--components", "l2c", "--benchmarks", "fft",
            "--n", "2", *SMALL,
        ]
        serial, parallel = tmp_path / "s.json", tmp_path / "p.json"
        assert main([*argv, "--workers", "1", "--json", str(serial)]) == 0
        assert main([*argv, "--workers", "2", "--json", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()
