"""Tests for the MCU, CCX and PCIe RTL models."""

import random

import pytest

from repro.mem.dram import Dram
from repro.rtl.registers import FlipFlopClass
from repro.soc.address import AddressMap
from repro.soc.geometry import T2_GEOMETRY
from repro.soc.packets import CpxPacket, CpxType, McuOp, McuRequest, PcxPacket, PcxType
from repro.uncore.ccx import CcxRtl
from repro.uncore.highlevel.mcu import HighLevelMcu
from repro.uncore.mcu import McuRtl
from repro.uncore.pcie import PcieRtl

AMAP = AddressMap(l2_banks=8, l2_sets=8, mcus=4)


def check_inventory(model, component):
    spec = T2_GEOMETRY[component]
    counts = model.flip_flop_count_by_class()
    assert model.flip_flop_count() == spec.flip_flops
    assert counts[FlipFlopClass.TARGET] == spec.target_ffs
    assert counts[FlipFlopClass.PROTECTED] == spec.protected_ffs
    assert counts[FlipFlopClass.INACTIVE] == spec.inactive_ffs


class TestMcuRtl:
    def test_inventory(self):
        check_inventory(McuRtl(0, Dram()), "mcu")

    def test_hardened_populations_match_sec64(self):
        m = McuRtl(0, Dram())
        timing = sum(r.flip_flops for r in m.registers().values() if r.timing_critical)
        config = sum(r.flip_flops for r in m.registers().values() if r.config)
        assert timing == 36
        assert config == 309

    def run_mcu(self, mcu, reqs, max_cycles=20_000):
        replies = []
        pending = list(reqs)
        for cycle in range(max_cycles):
            if pending and mcu.accept(pending[0], cycle):
                pending.pop(0)
            replies.extend(mcu.tick(cycle))
            if not pending and mcu.in_flight() == 0 and cycle > 10:
                break
        assert mcu.in_flight() == 0
        return replies

    def test_read_returns_memory(self):
        dram = Dram()
        dram.write_line(0x40, range(8))
        mcu = McuRtl(0, dram)
        replies = self.run_mcu(mcu, [McuRequest(McuOp.READ, 0x40, None, 1, 9)])
        assert replies[0].data == tuple(range(8))
        assert replies[0].tag == 9 and replies[0].src_bank == 1

    def test_write_then_read_ordered(self):
        dram = Dram()
        mcu = McuRtl(0, dram)
        replies = self.run_mcu(mcu, [
            McuRequest(McuOp.WRITE, 0x40, (5,) * 8, 0, 0),
            McuRequest(McuOp.READ, 0x40, None, 0, 1),
        ])
        assert replies[0].data == (5,) * 8

    def test_row_hit_faster_than_row_miss(self):
        dram = Dram()
        mcu = McuRtl(0, dram)
        # two reads to the same row: second should be a row hit
        self.run_mcu(mcu, [
            McuRequest(McuOp.READ, 0x0, None, 0, 1),
            McuRequest(McuOp.READ, 0x40, None, 0, 2),
        ])
        assert mcu.perf_row_hits.value >= 1

    def test_refresh_counts(self):
        mcu = McuRtl(0, Dram())
        for cycle in range(3000):
            mcu.tick(cycle)
        assert mcu.perf_refreshes.value >= 1

    def test_equivalence_with_highlevel(self):
        r = random.Random(5)
        reqs = []
        tag = 0
        for _ in range(150):
            addr = r.randrange(512) * 64
            if r.random() < 0.5:
                reqs.append(McuRequest(McuOp.READ, addr, None, r.randrange(2), tag))
                tag += 1
            else:
                reqs.append(McuRequest(
                    McuOp.WRITE, addr, tuple(r.getrandbits(64) for _ in range(8)),
                    r.randrange(2), 0))
        d1, d2 = Dram(), Dram()
        for i in range(8192):
            v = random.Random(i).getrandbits(64)
            d1.write_word(i * 8, v)
            d2.write_word(i * 8, v)
        hl_replies = []
        hl = HighLevelMcu(0, d1, send_reply=hl_replies.append)
        pending = list(reqs)
        for cycle in range(40_000):
            if pending and hl.accept(pending[0], cycle):
                pending.pop(0)
            hl.tick(cycle)
            if not pending and hl.in_flight() == 0 and cycle > 10:
                break
        rtl = McuRtl(0, d2)
        rtl_replies = self.run_mcu(rtl, reqs, max_cycles=40_000)
        a = {x.tag: (x.line_addr, x.data) for x in hl_replies}
        b = {x.tag: (x.line_addr, x.data) for x in rtl_replies}
        assert a == b
        assert not [x for x in set(d1.words) | set(d2.words)
                    if d1.read_word(x) != d2.read_word(x)]

    def test_benign_rules(self):
        a, b = McuRtl(0, Dram()), McuRtl(0, Dram())
        a.flip_bit("rq_addr", 5, 0)  # empty slot
        (m,) = a.compare(b)
        assert a.is_mismatch_benign(m)
        a2, b2 = McuRtl(0, Dram()), McuRtl(0, Dram())
        a2.flip_bit("rq_valid", 5, 0)
        (m2,) = a2.compare(b2)
        assert not a2.is_mismatch_benign(m2)


class TestCcxRtl:
    def test_inventory(self):
        check_inventory(CcxRtl(AMAP), "ccx")

    def run_ccx(self, ccx, sends, cycles=50):
        pcx_out, cpx_out = [], []
        for cycle in range(cycles):
            for kind, args in sends.get(cycle, []):
                if kind == "pcx":
                    ccx.send_pcx(*args, cycle)
                else:
                    ccx.send_cpx(*args, cycle)
            ccx.tick(cycle)
            pcx_out.extend(ccx.deliver_pcx(cycle))
            cpx_out.extend(ccx.deliver_cpx(cycle))
        return pcx_out, cpx_out

    def test_pcx_routed_by_address(self):
        ccx = CcxRtl(AMAP)
        pkt = PcxPacket(PcxType.LOAD, 2, 0, 0x1C0, 0, 1)  # bank 7
        pcx, _ = self.run_ccx(ccx, {0: [("pcx", (7, pkt))]})
        assert pcx == [(7, pkt)]

    def test_cpx_routed_by_core(self):
        ccx = CcxRtl(AMAP)
        pkt = CpxPacket(CpxType.LOAD_RET, 5, 1, 0x40, 9, 3)
        _, cpx = self.run_ccx(ccx, {0: [("cpx", (pkt, 2))]})
        assert cpx == [pkt]

    def test_order_preserved_same_source_dest(self):
        ccx = CcxRtl(AMAP)
        pkts = [PcxPacket(PcxType.LOAD, 1, 0, 0x40, 0, i) for i in range(1, 6)]
        sends = {0: [("pcx", (1, p)) for p in pkts]}
        pcx, _ = self.run_ccx(ccx, sends)
        assert [p.reqid for _b, p in pcx] == [1, 2, 3, 4, 5]

    def test_corrupted_address_misroutes(self):
        """A flipped address bit in the FIFO steers the packet to the
        wrong bank -- the crossbar failure mode of Sec. 3."""
        ccx = CcxRtl(AMAP)
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 0x000, 0, 1)  # bank 0
        ccx.send_pcx(0, pkt, 0)
        # flip bank-select bit 6 of the latched address
        slot = 0 * 8 + 0
        ccx.flip_bit("pcx_fifo_addr", slot, 6)
        pcx, _ = self.run_ccx(ccx, {})
        assert pcx[0][0] == 1  # delivered to bank 1

    def test_valid_bit_flip_drops_packet(self):
        ccx = CcxRtl(AMAP)
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 0x0, 0, 1)
        ccx.send_pcx(0, pkt, 0)
        ccx.flip_bit("pcx_fifo_valid", 0, 0)
        pcx, _ = self.run_ccx(ccx, {})
        assert pcx == []
        assert ccx.protocol_errors >= 1

    def test_fifo_overflow_counted(self):
        ccx = CcxRtl(AMAP)
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 0x0, 0, 1)
        for _ in range(12):
            ccx.send_pcx(0, pkt, 0)
        assert ccx.dropped == 4  # depth 8

    def test_in_flight(self):
        ccx = CcxRtl(AMAP)
        ccx.send_pcx(0, PcxPacket(PcxType.LOAD, 0, 0, 0x0, 0, 1), 0)
        assert ccx.in_flight() == 1


class _SinkPort:
    def __init__(self):
        self.writes = []

    def write_word(self, addr, value):
        self.writes.append((addr, value))


class TestPcieRtl:
    def test_inventory(self):
        check_inventory(PcieRtl(None), "pcie")

    def run_transfer(self, words, flips=None, cycles=3000):
        port = _SinkPort()
        pcie = PcieRtl(port)
        pcie.begin_transfer(words, dest_base=0x1000, status_addr=0x40, cycle=0)
        for cycle in range(cycles):
            if flips and cycle in flips:
                name, entry, bit = flips[cycle]
                pcie.flip_bit(name, entry, bit)
            pcie.tick(cycle)
            if not pcie.active and pcie.in_flight() == 0:
                break
        return port, pcie

    def test_clean_transfer(self):
        words = [11, 22, 33, 44]
        port, pcie = self.run_transfer(words)
        data_writes = {a: v for a, v in port.writes if a != 0x40}
        assert data_writes == {0x1000 + 8 * i: w for i, w in enumerate(words)}
        assert (0x40, 1) in port.writes  # completion flag
        assert pcie.transfer_window()[1] > 0

    def test_rx_buffer_mirrors_stream(self):
        words = [5, 6, 7]
        _port, pcie = self.run_transfer(words)
        assert pcie.rx_buffer.read((0x1000 >> 3) & 1023) == 5

    def test_payload_flip_corrupts_one_word(self):
        words = [0, 0, 0, 0]
        port, _ = self.run_transfer(words, flips={2: ("pay_data", 0, 3)})
        data = [v for a, v in port.writes if a != 0x40]
        assert sum(1 for v in data if v != 0) == 1

    def test_dest_flip_redirects_stream(self):
        words = [1] * 8
        port, _ = self.run_transfer(words, flips={3: ("dma_dest", 0, 20)})
        addrs = {a for a, _v in port.writes if a != 0x40}
        assert any(a >= (1 << 20) for a in addrs)

    def test_active_flip_kills_transfer_no_flag(self):
        """dma_active flip: the stream stops and the completion flag is
        never written -- the application polls forever (Hang)."""
        words = [1] * 16
        port, pcie = self.run_transfer(words, flips={2: ("dma_active", 0, 0)})
        assert (0x40, 1) not in port.writes
        assert not pcie.active

    def test_progress_flip_skips_or_repeats(self):
        words = list(range(1, 17))
        port, _ = self.run_transfer(words, flips={4: ("dma_progress", 0, 1)})
        clean_port, _ = self.run_transfer(words)
        assert port.writes != clean_port.writes

    def test_oversized_length_reads_zeros(self):
        words = [9, 9]
        port, pcie = self.run_transfer(words, flips={1: ("dma_len", 0, 4)})
        # transfer still terminates (reads past the host buffer give 0)
        assert not pcie.active

    def test_benign_rules(self):
        a, b = PcieRtl(_SinkPort()), PcieRtl(_SinkPort())
        a.flip_bit("pay_data", 0, 0)  # pipeline idle: benign
        (m,) = a.compare(b)
        assert a.is_mismatch_benign(m)

    def test_replay_buffer_benign(self):
        a, b = PcieRtl(_SinkPort()), PcieRtl(_SinkPort())
        a.flip_bit("replay_buffer", 3, 100)
        (m,) = a.compare(b)
        assert a.is_mismatch_benign(m)
