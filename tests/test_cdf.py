"""Tests for the empirical CDF helper (repro.utils.cdf)."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.cdf import Cdf


class TestCdfBasics:
    def test_empty_cdf(self):
        cdf = Cdf()
        assert len(cdf) == 0
        assert cdf.fraction_at_most(10) == 0.0

    def test_single_sample(self):
        cdf = Cdf([5.0])
        assert cdf.fraction_at_most(4.9) == 0.0
        assert cdf.fraction_at_most(5.0) == 1.0

    def test_fraction_greater_complements(self):
        cdf = Cdf([1, 2, 3, 4])
        assert cdf.fraction_greater(2) == pytest.approx(0.5)

    def test_incremental_add(self):
        cdf = Cdf()
        cdf.add(1)
        cdf.extend([2, 3])
        assert len(cdf) == 3
        assert cdf.fraction_at_most(2) == pytest.approx(2 / 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Cdf([-1.0])

    def test_decades_shape(self):
        cdf = Cdf([1, 10, 100, 1000])
        series = cdf.at_decades(max_exponent=3)
        assert len(series) == 4
        assert series[0] == (1.0, pytest.approx(0.25))
        assert series[-1] == (1000.0, pytest.approx(1.0))

    def test_quantile_bounds(self):
        cdf = Cdf(range(100))
        assert cdf.quantile(0.0) == 0
        assert cdf.quantile(1.0) == 99

    def test_quantile_empty_raises(self):
        with pytest.raises(ValueError):
            Cdf().quantile(0.5)


class TestCdfProperties:
    @given(st.lists(st.floats(0, 1e9, allow_nan=False), min_size=1, max_size=200))
    def test_monotone_nondecreasing(self, samples):
        cdf = Cdf(samples)
        points = sorted(set(samples))
        fractions = [cdf.fraction_at_most(p) for p in points]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    @given(st.lists(st.floats(0, 1e9, allow_nan=False), min_size=1, max_size=200))
    def test_max_sample_covers_everything(self, samples):
        cdf = Cdf(samples)
        assert cdf.fraction_at_most(max(samples)) == pytest.approx(1.0)

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=100))
    def test_quantile_is_a_sample(self, samples):
        cdf = Cdf(samples)
        assert cdf.quantile(0.5) in samples
