"""Tests for the observability layer (repro.obs).

Covers the digest-neutrality contract (obs on/off never changes
canonical result bytes), the metrics registry's null-object discipline,
trace-file well-formedness, executor event streams (serial and parallel
must agree), and progress accounting when workers die mid-sweep.
"""

import json

import pytest

from repro import obs
from repro.api import (
    CachingExecutor,
    ExperimentSpec,
    ParallelExecutor,
    SerialExecutor,
    Session,
    dumps_canonical,
)
from repro.obs.registry import spread
from repro.obs.trace import read_trace
from repro.system.machine import MachineConfig

SMALL = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8, l2_ways=4)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        benchmark="fft", component="l2c", mode="injection",
        machine=SMALL, scale=5e-6, seed=7, n=2,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture
def obs_enabled():
    """Enable the obs layer for one test, restoring prior state after."""
    was = obs.enabled()
    obs.REGISTRY.clear()
    obs.enable()
    try:
        yield
    finally:
        if not was:
            obs.disable()
        obs.REGISTRY.clear()


class TestRegistry:
    def test_disabled_layer_returns_null_singletons(self):
        obs.REGISTRY.clear()
        assert not obs.enabled()
        assert obs.counter("x") is obs.NULL_COUNTER
        assert obs.gauge("x") is obs.NULL_GAUGE
        assert obs.timer("x") is obs.NULL_TIMER
        assert obs.histogram("x") is obs.NULL_HISTOGRAM
        # null mutators are no-ops, not errors
        obs.counter("x").inc()
        obs.gauge("x").set(3)
        with obs.timer("x").time():
            pass
        obs.histogram("x").observe(0.5)
        assert obs.REGISTRY.to_dict() == {}

    def test_enabled_layer_registers_real_metrics(self, obs_enabled):
        c = obs.counter("cells")
        c.inc()
        c.inc(2)
        obs.gauge("rate").set(1.5)
        with obs.timer("phase").time():
            pass
        obs.histogram("lat").observe(0.02)
        doc = obs.REGISTRY.to_dict()
        assert doc["cells"] == {"kind": "counter", "value": 3}
        assert doc["rate"]["value"] == 1.5
        assert doc["phase"]["count"] == 1
        assert doc["lat"]["count"] == 1

    def test_labels_create_distinct_series(self, obs_enabled):
        obs.counter("hits", labels={"model": "a"}).inc()
        obs.counter("hits", labels={"model": "b"}).inc(4)
        doc = obs.REGISTRY.to_dict()
        assert doc["hits[model=a]"]["value"] == 1
        assert doc["hits[model=b]"]["value"] == 4

    def test_same_name_returns_same_object(self, obs_enabled):
        assert obs.counter("one") is obs.counter("one")

    def test_spread_summary(self):
        got = spread([3.0, 1.0, 2.0])
        assert got["min"] == 1.0
        assert got["median"] == 2.0
        assert got["max"] == 3.0
        assert got["stdev"] == pytest.approx(0.816497, rel=1e-3)


class TestTrace:
    def test_spans_serialize_as_valid_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = obs.TraceWriter(path)
        with writer.span("golden_chunk", "golden", start_cycle=0):
            pass
        writer.instant("cache_hit", "cache", index=3)
        writer.close()
        assert obs.validate_trace(path) == []
        events = read_trace(path)
        assert [e["name"] for e in events] == ["golden_chunk", "cache_hit"]
        span = events[0]
        assert span["ph"] == "X"
        assert span["dur"] >= 0
        assert span["cpu_dur"] >= 0
        assert "rss_kb" in span
        # canonical serialization: sorted keys, no spaces
        first = path.read_text().splitlines()[0]
        assert first == json.dumps(
            json.loads(first), sort_keys=True, separators=(",", ":")
        )

    def test_span_records_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = obs.TraceWriter(path)
        with pytest.raises(RuntimeError):
            with writer.span("boom", "test"):
                raise RuntimeError("no")
        writer.close()
        (event,) = read_trace(path)
        assert event["error"] == "RuntimeError"

    def test_validate_trace_flags_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ph":"X"}\nnot json\n')
        errors = obs.validate_trace(path)
        assert errors  # missing keys + unparsable line

    def test_chrome_conversion(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = obs.TraceWriter(path)
        with writer.span("work", "golden"):
            pass
        writer.close()
        chrome = obs.to_chrome(path)
        (event,) = chrome["traceEvents"]
        assert event["ph"] == "X"
        assert isinstance(event["ts"], int)  # microseconds


class TestExecutorEvents:
    def _collect(self, executor, specs):
        events = []
        results = executor.run(specs, on_event=events.append)
        return results, events

    def test_serial_and_parallel_streams_agree(self):
        specs = [small_spec(seed=s) for s in (1, 2, 3, 4)]
        serial_results, serial_events = self._collect(SerialExecutor(), specs)
        parallel_results, parallel_events = self._collect(
            ParallelExecutor(workers=2), specs
        )
        # events never perturb results, and both executors agree
        assert [r.to_dict() for r in serial_results] == [
            r.to_dict() for r in parallel_results
        ]

        def summarize(events):
            starts = sorted(e["index"] for e in events if e["type"] == "cell_start")
            dones = sorted(e["index"] for e in events if e["type"] == "cell_done")
            return starts, dones

        assert summarize(serial_events) == summarize(parallel_events)
        assert summarize(serial_events)[0] == [0, 1, 2, 3]

    def test_event_payloads_are_well_formed(self):
        specs = [small_spec(seed=s) for s in (1, 2)]
        _, events = self._collect(ParallelExecutor(workers=2), specs)
        for event in events:
            assert event["total"] == 2
            assert isinstance(event["digest"], str)
            assert isinstance(event["worker"], int)
        for done in (e for e in events if e["type"] == "cell_done"):
            assert done["seconds"] >= 0
            assert done["cpu_seconds"] >= 0
            assert done["records"] == 2
            assert done["rss_kb"] >= 0

    def test_events_off_by_default(self):
        # the no-callback path must stay the original zero-overhead one
        specs = [small_spec(seed=9)]
        assert SerialExecutor().run(specs)[0].records

    def test_callback_errors_never_kill_the_sweep(self):
        def boom(event):
            raise RuntimeError("observer crashed")

        results = SerialExecutor().run([small_spec(seed=5)], on_event=boom)
        assert len(results) == 1

    def test_caching_executor_emits_hit_miss_events(self, tmp_path):
        specs = [small_spec(seed=s) for s in (1, 2)]
        first_events, second_events = [], []
        cold = CachingExecutor(tmp_path, SerialExecutor())
        cold.run(specs, on_event=first_events.append)
        assert cold.last_hits == 0 and cold.last_misses == 2
        warm = CachingExecutor(tmp_path, SerialExecutor())
        warm.run(specs, on_event=second_events.append)
        assert warm.last_hits == 2 and warm.last_misses == 0
        assert warm.last_stale == 0
        assert sum(e["type"] == "cache_miss" for e in first_events) == 2
        assert sum(e["type"] == "cache_hit" for e in second_events) == 2
        # hits are terminal: no cell_start/cell_done on the warm pass
        assert not any(e["type"] == "cell_start" for e in second_events)


class TestProgressState:
    def _start(self, index, worker=100):
        return {"type": "cell_start", "index": index, "total": 4,
                "digest": "d", "label": f"cell{index}", "worker": worker,
                "t": 0.0}

    def _done(self, index, worker=100):
        return {**self._start(index, worker), "type": "cell_done",
                "seconds": 0.5, "cpu_seconds": 0.4, "rss_kb": 1024,
                "records": 3}

    def test_counts_and_rates(self):
        state = obs.ProgressState(total=4)
        for event in (self._start(0), self._done(0), self._start(1)):
            state.handle(event)
        assert len(state.started) == 2
        assert len(state.done) == 1
        assert state.incomplete() == {1}
        report = state.report()
        assert report["records"] == 3
        assert report["cache"] == {"hits": 0, "misses": 0, "stale": 0}
        assert report["workers"] == 1

    def test_killed_worker_yields_coherent_report(self):
        """A worker that dies after cell_start leaves its cells listed as
        incomplete -- started, done and incomplete always reconcile."""
        state = obs.ProgressState(total=4)
        for event in (
            self._start(0, worker=100), self._done(0, worker=100),
            self._start(1, worker=200),   # worker 200 is killed here
            self._start(2, worker=100), self._done(2, worker=100),
        ):
            state.handle(event)
        report = state.report()
        assert report["done"] == 2
        assert report["incomplete"] == [1]
        assert len(state.started) == report["done"] + len(report["incomplete"])

    def test_malformed_events_are_tallied_not_raised(self):
        state = obs.ProgressState()
        state.handle({"type": "martian_event"})
        state.handle({"no": "type"})
        assert state.malformed == 2

    def test_cache_hits_are_terminal_cells(self):
        state = obs.ProgressState(total=2)
        state.handle({"type": "cache_hit", "index": 0, "total": 2,
                      "digest": "d", "label": "x", "worker": 1, "t": 0.0})
        assert len(state.done) == 1
        assert state.report()["cache"]["hits"] == 1
        assert state.cache_hit_rate() == 1.0


class TestReport:
    def test_snapshot_and_table(self, obs_enabled):
        obs.counter("cells").inc(5)
        doc = obs.snapshot()
        assert doc["metrics"]["cells"]["value"] == 5
        table = obs.render_table(doc)
        assert "cells" in table and "counter" in table

    def test_prometheus_rendering(self, obs_enabled):
        obs.counter("cache.hits").inc(2)
        obs.gauge("worker.rss_kb", labels={"worker": "1"}).set(100)
        obs.gauge("worker.rss_kb", labels={"worker": "2"}).set(200)
        obs.histogram("lat").observe(0.02)
        text = obs.render_prometheus(obs.snapshot())
        assert "repro_cache_hits 2" in text
        assert 'repro_worker_rss_kb{worker="1"} 100' in text
        # one TYPE declaration per metric family, even with many series
        assert text.count("# TYPE repro_worker_rss_kb gauge") == 1
        assert 'le="+Inf"' in text

    def test_snapshot_file_round_trip(self, tmp_path, obs_enabled):
        obs.counter("cells").inc()
        path = tmp_path / "obs" / "snap.json"
        obs.write_snapshot(path)
        from repro.obs.report import read_snapshot

        assert read_snapshot(path)["metrics"]["cells"]["value"] == 1


class TestDigestNeutrality:
    def test_bit_identity_with_obs_and_tracer_on(self, tmp_path, obs_enabled):
        """Instrumentation must never consume campaign RNG or touch
        simulated state: canonical result bytes are identical with the
        full obs stack (metrics + tracer) active."""
        spec = small_spec(seed=2015, n=3)
        writer = obs.TraceWriter(tmp_path / "trace.jsonl")
        previous = obs.set_tracer(writer)
        try:
            with_obs = dumps_canonical(Session().run(spec).to_dict())
        finally:
            obs.set_tracer(previous)
            writer.close()
        obs.disable()
        obs.REGISTRY.clear()
        without_obs = dumps_canonical(Session().run(spec).to_dict())
        assert with_obs == without_obs
        # the instrumented run actually produced metrics and spans
        assert obs.validate_trace(tmp_path / "trace.jsonl") == []

    def test_obs_state_not_in_spec_digest(self):
        spec = small_spec()
        before = spec.digest()
        obs.enable()
        try:
            assert small_spec().digest() == before
        finally:
            obs.disable()
