"""Tests for the accelerated-mode uncore models (repro.uncore.highlevel)."""

import pytest

from repro.mem.dram import Dram
from repro.mem.l2state import L2BankState
from repro.soc.address import AddressMap
from repro.soc.packets import (
    CpxType,
    McuOp,
    McuReply,
    McuRequest,
    PcxPacket,
    PcxType,
)
from repro.uncore.highlevel.ccx import HighLevelCcx
from repro.uncore.highlevel.l2c import HighLevelL2Bank
from repro.uncore.highlevel.mcu import HighLevelMcu
from repro.uncore.highlevel.pcie import HighLevelPcieDma, file_bytes_to_words


class L2Harness:
    """One high-level L2 bank wired to one MCU over real DRAM."""

    def __init__(self, sets=8, ways=4):
        self.amap = AddressMap(l2_banks=8, l2_sets=sets, mcus=4)
        self.dram = Dram()
        self.mcu_inbox = []
        self.replies = []
        self.state = L2BankState(0, self.amap, ways=ways)
        self.bank = HighLevelL2Bank(
            0, self.state, send_mcu=self.mcu_inbox.append,
            log_store=lambda a, c: None,
        )
        self.mcu = HighLevelMcu(0, self.dram, send_reply=self.replies.append)
        self.cycle = 0

    def run(self, pkts, max_cycles=5000):
        out = []
        pending = list(pkts)
        for _ in range(max_cycles):
            if pending and self.bank.accept(pending[0], self.cycle):
                pending.pop(0)
            for req in self.mcu_inbox:
                self.mcu.accept(req, self.cycle)
            self.mcu_inbox.clear()
            out.extend(self.bank.tick(self.cycle))
            self.mcu.tick(self.cycle)
            for rep in self.replies:
                self.bank.deliver_mcu_reply(rep)
            self.replies.clear()
            self.cycle += 1
            if not pending and self.bank.in_flight() == 0 and self.mcu.in_flight() == 0:
                break
        return out


class TestHighLevelL2:
    def test_load_returns_memory_value(self):
        h = L2Harness()
        h.dram.write_word(0x200, 0xAB)
        out = h.run([PcxPacket(PcxType.LOAD, 1, 0, 0x200, 0, 7)])
        rets = [p for p in out if p.ctype is CpxType.LOAD_RET]
        assert rets[0].data == 0xAB and rets[0].reqid == 7

    def test_store_then_load(self):
        h = L2Harness()
        out = h.run([
            PcxPacket(PcxType.STORE, 0, 0, 0x200, 0x99, 1),
            PcxPacket(PcxType.LOAD, 1, 0, 0x200, 0, 2),
        ])
        load = [p for p in out if p.ctype is CpxType.LOAD_RET][0]
        assert load.data == 0x99

    def test_store_marks_dirty_and_sets_directory(self):
        h = L2Harness()
        h.run([PcxPacket(PcxType.STORE, 3, 0, 0x200, 1, 1)])
        s, w = h.state.lookup(0x200)
        line = h.state.lines[s][w]
        assert line.dirty
        assert line.directory == (1 << 3)

    def test_remote_store_invalidates_sharers(self):
        h = L2Harness()
        out = h.run([
            PcxPacket(PcxType.LOAD, 1, 0, 0x200, 0, 1),  # core 1 shares
            PcxPacket(PcxType.STORE, 2, 0, 0x200, 5, 2),  # core 2 stores
        ])
        invs = [p for p in out if p.ctype is CpxType.INVALIDATE]
        assert [p.core for p in invs] == [1]

    def test_atomic_invalidates_everyone(self):
        h = L2Harness()
        out = h.run([
            PcxPacket(PcxType.LOAD, 1, 0, 0x200, 0, 1),
            PcxPacket(PcxType.ATOMIC_TAS, 1, 0, 0x200, 0, 2),
        ])
        invs = [p for p in out if p.ctype is CpxType.INVALIDATE]
        assert [p.core for p in invs] == [1]
        s, w = h.state.lookup(0x200)
        assert h.state.lines[s][w].directory == 0

    def test_tas_semantics(self):
        h = L2Harness()
        out = h.run([
            PcxPacket(PcxType.ATOMIC_TAS, 0, 0, 0x200, 0, 1),
            PcxPacket(PcxType.ATOMIC_TAS, 0, 1, 0x200, 0, 2),
        ])
        rets = {p.reqid: p.data for p in out if p.ctype is CpxType.ATOMIC_RET}
        assert rets[1] == 0 and rets[2] == 1

    def test_faa_semantics(self):
        h = L2Harness()
        out = h.run([
            PcxPacket(PcxType.ATOMIC_ADD, 0, 0, 0x200, 5, 1),
            PcxPacket(PcxType.ATOMIC_ADD, 0, 0, 0x200, 3, 2),
            PcxPacket(PcxType.LOAD, 0, 0, 0x200, 0, 3),
        ])
        load = [p for p in out if p.ctype is CpxType.LOAD_RET][0]
        assert load.data == 8

    def test_eviction_writes_back_dirty_line(self):
        h = L2Harness(sets=8, ways=1)  # direct-mapped: easy conflicts
        a1 = h.amap.rebuild_addr(1, 0, 0)
        a2 = h.amap.rebuild_addr(2, 0, 0)
        h.run([
            PcxPacket(PcxType.STORE, 0, 0, a1, 0x77, 1),
            PcxPacket(PcxType.LOAD, 0, 0, a2, 0, 2),
        ])
        assert h.dram.read_word(a1) == 0x77

    def test_input_queue_backpressure(self):
        h = L2Harness()
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 0x200, 0, 1)
        accepted = sum(h.bank.accept(pkt, 0) for _ in range(40))
        assert accepted == 16  # INPUT_QUEUE_DEPTH

    def test_dma_update_refreshes_resident_line(self):
        h = L2Harness()
        h.run([PcxPacket(PcxType.LOAD, 0, 0, 0x200, 0, 1)])
        h.bank.dma_update(0x200, 0xFEED)
        s, w = h.state.lookup(0x200)
        assert h.state.lines[s][w].data[h.amap.word_in_line(0x200)] == 0xFEED

    def test_snapshot_restore(self):
        h = L2Harness()
        h.run([PcxPacket(PcxType.STORE, 0, 0, 0x200, 1, 1)])
        snap = h.bank.snapshot()
        h.run([PcxPacket(PcxType.STORE, 0, 0, 0x200, 2, 2)])
        h.bank.restore(snap)
        s, w = h.state.lookup(0x200)
        assert h.state.lines[s][w].data[h.amap.word_in_line(0x200)] == 1


class TestHighLevelMcu:
    def test_read_latency_and_data(self):
        dram = Dram()
        dram.write_line(0x100 & ~63, range(8))
        replies = []
        mcu = HighLevelMcu(0, dram, send_reply=replies.append)
        mcu.accept(McuRequest(McuOp.READ, 0x100, None, 1, 5), cycle=0)
        for c in range(100):
            mcu.tick(c)
        assert len(replies) == 1
        assert replies[0].tag == 5 and replies[0].src_bank == 1

    def test_write_applies(self):
        dram = Dram()
        mcu = HighLevelMcu(0, dram, send_reply=lambda r: None)
        mcu.accept(McuRequest(McuOp.WRITE, 0x40, tuple(range(8)), 0, 0), 0)
        for c in range(100):
            mcu.tick(c)
        assert dram.read_line(0x40) == tuple(range(8))

    def test_fifo_order_same_line(self):
        dram = Dram()
        replies = []
        mcu = HighLevelMcu(0, dram, send_reply=replies.append)
        mcu.accept(McuRequest(McuOp.WRITE, 0x40, (9,) * 8, 0, 0), 0)
        mcu.accept(McuRequest(McuOp.READ, 0x40, None, 0, 1), 0)
        for c in range(100):
            mcu.tick(c)
        assert replies[0].data == (9,) * 8


class TestHighLevelCcx:
    def test_fixed_latency(self):
        ccx = HighLevelCcx(latency=3)
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 0x40, 0, 1)
        ccx.send_pcx(1, pkt, cycle=10)
        assert ccx.deliver_pcx(12) == []
        assert ccx.deliver_pcx(13) == [(1, pkt)]

    def test_in_flight(self):
        ccx = HighLevelCcx()
        ccx.send_pcx(0, PcxPacket(PcxType.LOAD, 0, 0, 0, 0, 1), 0)
        assert ccx.in_flight() == 1
        ccx.deliver_pcx(100)
        assert ccx.in_flight() == 0

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            HighLevelCcx(latency=0)


class TestHighLevelPcie:
    def test_file_packing(self):
        words = file_bytes_to_words(b"\x01\x02" + b"\x00" * 7)
        assert words[0] == 0x0201
        assert len(words) == 2

    def test_transfer_completes_and_sets_flag(self):
        dram = Dram()
        dma = HighLevelPcieDma(dram, rate=2)
        dma.begin_transfer([1, 2, 3, 4, 5], dest_base=0x1000, status_addr=0x40, cycle=0)
        cycle = 0
        while dma.active:
            dma.tick(cycle)
            cycle += 1
        assert dram.read_word(0x1000 + 8 * 4) == 5
        assert dram.read_word(0x40) == 1
        assert dma.transfer_window()[0] == 0

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            HighLevelPcieDma(Dram()).begin_transfer([1], 0x1001, 0x40, 0)

    def test_in_flight_counts_remaining(self):
        dma = HighLevelPcieDma(Dram(), rate=1)
        dma.begin_transfer([1, 2, 3], 0x1000, 0x40, 0)
        assert dma.in_flight() == 3
        dma.tick(0)
        assert dma.in_flight() == 2
