"""Property and scenario tests for golden-copy isolation invariants.

The validity of every outcome classification rests on three invariants
of the co-simulation adapters:

1. pre-injection, the target and golden copies stay bit-identical under
   arbitrary live traffic (so any post-injection mismatch is caused by
   the flip);
2. the golden copy's memory traffic never touches live memory;
3. corruption created by the target is never laundered into the golden
   copy (the golden fork serves all its reads).
"""

import random

import pytest

from repro.mixedmode.adapters import L2cCosimAdapter, McuCosimAdapter
from repro.mixedmode.platform import MixedModePlatform
from repro.system.machine import MachineConfig

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)


@pytest.fixture(scope="module")
def platform():
    return MixedModePlatform("flui", machine_config=CFG, scale=1 / 120_000)


def _attach_and_run(platform, component, instance, cycles):
    machine = platform.machine
    machine.restore(platform.golden.snapshots[0])
    machine.run_until_cycle(min(500, platform.golden.cycles // 4))
    adapter = platform._attach_quiesced(component, instance)
    for _ in range(cycles):
        machine.step()
    return adapter


@pytest.mark.parametrize("component,instance", [("l2c", 0), ("l2c", 3), ("mcu", 0)])
def test_lockstep_identity_without_injection(platform, component, instance):
    """Invariant 1: no flip => zero mismatches after long co-simulation."""
    adapter = _attach_and_run(platform, component, instance, 1500)
    status = adapter.compare()
    assert status.clean, [
        (m.name, m.entry) for m in status.mismatches[:5]
    ]
    assert adapter.erroneous_output_cycle is None
    adapter.release()


def test_golden_writes_never_reach_live_memory(platform):
    """Invariant 2: golden writebacks stay in the fork."""
    adapter = _attach_and_run(platform, "l2c", 0, 800)
    live_before = dict(platform.machine.dram.words)
    # force the golden copy to write back something via its port
    adapter.golden_port.write_line(0xF00000, tuple(range(8)))
    assert dict(platform.machine.dram.words) == live_before
    adapter.release()


def test_target_corruption_not_laundered_into_golden(platform):
    """Invariant 3: after the target corrupts live memory, golden reads
    still see the clean value."""
    adapter = _attach_and_run(platform, "l2c", 0, 400)
    victim = 0xE00000
    platform.machine.dram.write_word(victim, 0xBAD)
    assert adapter.golden_port.read_word(victim) != 0xBAD
    adapter.release()


def test_mcu_adapter_lockstep_under_traffic(platform):
    adapter = _attach_and_run(platform, "mcu", 1, 1500)
    status = adapter.compare()
    assert status.clean
    adapter.release()


def test_injected_flip_is_sole_initial_divergence(platform):
    """Immediately after the flip, exactly one bit differs."""
    adapter = _attach_and_run(platform, "l2c", 0, 600)
    rng = random.Random(13)
    bit = rng.randrange(adapter.target.target_flip_flop_count())
    adapter.flip(bit)
    status = adapter.compare()
    assert len(status.mismatches) == 1
    assert status.mismatches[0].bit_count == 1
    adapter.release()
