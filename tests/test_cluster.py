"""Distributed sweep fabric (repro.cluster): sharding, launchers, the
worker protocol, and the coordinator's byte-identity + failure-recovery
contract."""

import io
import json
import os
import signal
import subprocess

import pytest

from repro.api import (
    Grid,
    SerialExecutor,
    dumps_canonical,
    make_executor,
    result_cache_path,
    shard_by_digest,
)
from repro.cluster import (
    PROTOCOL_VERSION,
    ClusterExecutor,
    LocalLauncher,
    SshLauncher,
    parse_launcher,
)
from repro.cluster.protocol import dumps_line, parse_line, shard_message
from repro.cluster.worker import run_worker
from repro.obs import ProgressState
from repro.system.machine import MachineConfig

CFG = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8)


def _grid_specs(components=("l2c", "mcu")):
    return Grid(
        components=components,
        benchmarks=("fft",),
        seeds=(2015,),
        mode="injection",
        n=2,
        machine=CFG,
        scale=5e-6,
    ).specs()


def _blobs(results):
    return [dumps_canonical(r.to_dict()) for r in results]


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
def test_shard_by_digest_partitions_every_cell_exactly_once():
    specs = _grid_specs(components=("l2c", "mcu", "ccx"))
    for shards in (1, 2, 3, 5):
        parts = shard_by_digest(specs, shards)
        assert len(parts) == shards
        seen = sorted(i for part in parts for i, _ in part)
        assert seen == list(range(len(specs)))
        # placement is a pure function of content
        again = shard_by_digest(specs, shards)
        assert [[i for i, _ in part] for part in parts] == [
            [i for i, _ in part] for part in again
        ]


def test_shard_by_digest_is_content_addressed():
    specs = _grid_specs()
    parts = shard_by_digest(specs, 4)
    for shard_id, part in enumerate(parts):
        for index, spec in part:
            assert int(spec.digest(), 16) % 4 == shard_id
            assert specs[index] is spec


# ----------------------------------------------------------------------
# launchers
# ----------------------------------------------------------------------
def test_local_launcher_command():
    argv = LocalLauncher(python="py").command(0, ["--cache-dir", "/bus"])
    assert argv == ["py", "-m", "repro.cli", "worker", "--cache-dir", "/bus"]


def test_ssh_launcher_round_robin_and_command():
    launcher = SshLauncher(
        ["hostA", "hostB"], python="py3", pythonpath="/opt/repro/src"
    )
    assert [launcher.host_for(i) for i in range(4)] == [
        "hostA", "hostB", "hostA", "hostB",
    ]
    argv = launcher.command(1, ["--cache-dir", "/bus"])
    assert argv[:3] == ["ssh", "-o", "BatchMode=yes"]
    assert argv[3] == "hostB"
    assert argv[4:] == [
        "env", "PYTHONPATH=/opt/repro/src",
        "py3", "-m", "repro.cli", "worker", "--cache-dir", "/bus",
    ]


def test_parse_launcher_specs(monkeypatch):
    assert isinstance(parse_launcher(None), LocalLauncher)
    assert isinstance(parse_launcher("local"), LocalLauncher)
    monkeypatch.setenv("REPRO_CLUSTER_PYTHON", "py9")
    monkeypatch.setenv("REPRO_CLUSTER_PYTHONPATH", "/x/src")
    ssh = parse_launcher("ssh:a, b")
    assert isinstance(ssh, SshLauncher)
    assert ssh.hosts == ["a", "b"]
    assert ssh.python == "py9"
    assert ssh.pythonpath == "/x/src"
    built = LocalLauncher()
    assert parse_launcher(built) is built
    with pytest.raises(ValueError):
        parse_launcher("carrier-pigeon:coop1")


# ----------------------------------------------------------------------
# worker protocol (in-process, no subprocess)
# ----------------------------------------------------------------------
def test_run_worker_protocol_in_process(tmp_path):
    specs = _grid_specs(components=("l2c",))
    cells = [(i, spec.to_dict()) for i, spec in enumerate(specs)]
    script = (
        dumps_line(shard_message(cells, len(specs)))
        + "\n"
        + "not json\n"
        + dumps_line({"type": "mystery"})
        + "\n"
        + dumps_line({"type": "shutdown"})
        + "\n"
    )
    out = io.StringIO()
    rc = run_worker(
        tmp_path / "bus",
        worker_id=3,
        heartbeat=0,
        in_stream=io.StringIO(script),
        out_stream=out,
    )
    assert rc == 0

    messages = [parse_line(line) for line in out.getvalue().splitlines()]
    assert all(m is not None for m in messages)

    ready = messages[0]
    assert ready["type"] == "ready"
    assert ready["protocol"] == PROTOCOL_VERSION
    assert ready["worker_id"] == 3
    assert ready["pid"] == os.getpid()

    by_type = {}
    for m in messages:
        by_type.setdefault(m["type"], []).append(m)
    # one durable result per cell, sent after the rename: file must exist
    assert [m["index"] for m in by_type["cell_result"]] == list(
        range(len(specs))
    )
    for m in by_type["cell_result"]:
        path = result_cache_path(tmp_path / "bus", specs[m["index"]])
        assert path.exists()
        assert m["digest"] == specs[m["index"]].digest()
    assert by_type["shard_done"][0]["count"] == len(specs)
    # the standard telemetry dialect is forwarded as event messages
    etypes = [m["event"]["type"] for m in by_type["event"]]
    assert etypes.count("cache_miss") == len(specs)
    assert etypes.count("cell_start") == len(specs)
    assert etypes.count("cell_done") == len(specs)
    # malformed + unknown messages are complained about, never fatal
    assert len(by_type["error"]) == 2


def test_run_worker_cells_are_cache_hits_second_time(tmp_path):
    specs = _grid_specs(components=("l2c",))
    cells = [(i, spec.to_dict()) for i, spec in enumerate(specs)]
    script = dumps_line(shard_message(cells, len(specs))) + "\n"
    run_worker(
        tmp_path / "bus",
        heartbeat=0,
        in_stream=io.StringIO(script),
        out_stream=io.StringIO(),
    )
    out = io.StringIO()
    run_worker(
        tmp_path / "bus",
        heartbeat=0,
        in_stream=io.StringIO(script),
        out_stream=out,
    )
    messages = [parse_line(line) for line in out.getvalue().splitlines()]
    etypes = [
        m["event"]["type"] for m in messages if m and m["type"] == "event"
    ]
    assert etypes.count("cache_hit") == len(specs)
    assert "cell_start" not in etypes


# ----------------------------------------------------------------------
# coordinator: byte-identity, warm bus, failure recovery
# ----------------------------------------------------------------------
def test_cluster_sweep_byte_identical_to_serial(tmp_path):
    specs = _grid_specs()
    serial = SerialExecutor().run(specs)
    executor = ClusterExecutor(
        workers=2, cache_dir=tmp_path / "bus", heartbeat_interval=0.2
    )
    clustered = executor.run(specs)
    assert _blobs(clustered) == _blobs(serial)
    assert executor.last_worker_deaths == 0
    assert executor.last_fallback == 0


def test_cluster_sweep_warm_bus_is_all_hits(tmp_path):
    specs = _grid_specs()
    executor = ClusterExecutor(
        workers=2, cache_dir=tmp_path / "bus", heartbeat_interval=0.2
    )
    first = executor.run(specs)

    events = []
    second = executor.run(specs, on_event=events.append)
    assert _blobs(second) == _blobs(first)
    etypes = [e["type"] for e in events]
    assert etypes.count("cache_hit") == len(specs)
    assert "cell_start" not in etypes
    assert executor.last_fallback == 0


def test_make_executor_cluster_backend(tmp_path):
    specs = _grid_specs(components=("l2c",))
    executor = make_executor(cluster=2, cache_dir=tmp_path / "bus")
    assert isinstance(executor, ClusterExecutor)
    assert _blobs(executor.run(specs)) == _blobs(SerialExecutor().run(specs))


def test_cluster_survives_sigkilled_worker(tmp_path):
    specs = _grid_specs(components=("l2c", "mcu", "ccx"))
    serial = SerialExecutor().run(specs)
    shards = shard_by_digest(specs, 2)
    big = max(range(2), key=lambda w: len(shards[w]))
    big_indices = {i for i, _ in shards[big]}
    assert big_indices  # the victim must own at least one cell

    state = ProgressState(total=len(specs))
    killed = []

    def on_event(event):
        state.handle(event)
        if (
            event.get("type") == "cell_done"
            and not killed
            and event.get("index") in big_indices
        ):
            killed.append(event["worker"])
            os.kill(event["worker"], signal.SIGKILL)

    executor = ClusterExecutor(
        workers=2, cache_dir=tmp_path / "bus", heartbeat_interval=0.2
    )
    clustered = executor.run(specs, on_event=on_event)

    assert killed, "the victim worker never reported a cell_done"
    assert executor.last_worker_deaths == 1
    # re-dispatch + bus merge keep the sweep byte-identical regardless
    assert _blobs(clustered) == _blobs(serial)
    # progress stayed coherent through the death
    report = state.report()
    assert report["done"] == len(specs)
    assert report["incomplete"] == []
    assert report["worker_deaths"] == 1


class _BrokenLauncher:
    """A launcher whose workers die instantly (unreachable host stand-in)."""

    def command(self, worker_id, worker_args):
        return ["sh", "-c", "exit 1"]

    def launch(self, worker_id, worker_args):
        return subprocess.Popen(
            self.command(worker_id, worker_args),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
        )


def test_cluster_falls_back_to_local_when_all_workers_die(tmp_path):
    specs = _grid_specs(components=("l2c",))
    executor = ClusterExecutor(
        workers=2,
        launcher=_BrokenLauncher(),
        cache_dir=tmp_path / "bus",
        heartbeat_interval=0.2,
        max_retries=1,
    )
    results = executor.run(specs, on_event=ProgressState().handle)
    assert _blobs(results) == _blobs(SerialExecutor().run(specs))
    assert executor.last_worker_deaths == 2
    assert executor.last_fallback == len(specs)


def test_cluster_worker_cli_entrypoint(tmp_path):
    """The LocalLauncher argv really is a working agent (ready handshake
    and clean shutdown over real pipes)."""
    argv = LocalLauncher().command(
        0, ["--cache-dir", str(tmp_path / "bus"), "--heartbeat", "0"]
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        argv,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        bufsize=1,
        env=env,
    )
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["type"] == "ready"
        assert ready["protocol"] == PROTOCOL_VERSION
        proc.stdin.write(dumps_line({"type": "shutdown"}) + "\n")
        proc.stdin.flush()
        assert proc.wait(timeout=30) == 0
    finally:
        proc.kill()
