"""Integration tests for the full-system machine (repro.system)."""

import pytest

from repro.core.cpu import TrapKind
from repro.core.program import ProgramBuilder
from repro.system.machine import Machine, MachineConfig
from repro.workloads.base import WorkloadImage

CFG = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=16)

GLOBALS = 0x10000
DATA = 0x200000


def make_image(programs, init=None, name="test"):
    return WorkloadImage(
        name=name,
        programs=programs,
        regions=[(GLOBALS, 0x1000, "globals"), (DATA, 0x4000, "data")],
        init_words=init or {},
    )


def run_image(image, cfg=CFG, max_cycles=300_000):
    machine = Machine(cfg)
    machine.load_workload(image)
    return machine, machine.run(max_cycles=max_cycles)


class TestBasicExecution:
    def test_single_thread_compute_and_output(self):
        b = ProgramBuilder("t")
        b.ldi(1, 6)
        b.muli(1, 1, 7)
        b.ldi(2, 0)
        b.out(2, 1)
        b.halt()
        halt = ProgramBuilder("h")
        halt.halt()
        _m, res = run_image(make_image([b.build(), halt.build()]))
        assert res.completed
        assert res.output == {0: 42}

    def test_memory_roundtrip_through_l2(self):
        b = ProgramBuilder("t")
        b.ldi(1, DATA)
        b.ldi(2, 0x1234)
        b.st(2, 1, 0)
        b.ld(3, 1, 0)
        b.ldi(4, 0)
        b.out(4, 3)
        b.halt()
        h = ProgramBuilder("h")
        h.halt()
        _m, res = run_image(make_image([b.build(), h.build()]))
        assert res.output == {0: 0x1234}

    def test_initial_memory_visible(self):
        b = ProgramBuilder("t")
        b.ldi(1, DATA + 64)
        b.ld(2, 1, 0)
        b.ldi(3, 0)
        b.out(3, 2)
        b.halt()
        h = ProgramBuilder("h")
        h.halt()
        _m, res = run_image(make_image([b.build(), h.build()], init={DATA + 64: 777}))
        assert res.output == {0: 777}

    def test_cross_thread_communication_via_atomics(self):
        flag = GLOBALS + 0x100
        cell = GLOBALS + 0x108
        producer = ProgramBuilder("p")
        producer.ldi(1, cell)
        producer.ldi(2, 123)
        producer.st(2, 1, 0)
        producer.ldi(1, flag)
        producer.ldi(2, 1)
        producer.faa(3, 1, 2)  # release (drains the store first)
        producer.halt()
        consumer = ProgramBuilder("c")
        consumer.ldi(1, flag)
        wait = consumer.place(consumer.label("wait"))
        consumer.ldi(2, 0)
        consumer.faa(3, 1, 2)
        consumer.beq(3, 0, wait)
        consumer.ldi(1, cell)
        consumer.ld(4, 1, 0)
        consumer.ldi(5, 0)
        consumer.out(5, 4)
        consumer.halt()
        _m, res = run_image(make_image([producer.build(), consumer.build()]))
        assert res.completed
        assert res.output == {0: 123}

    def test_lock_mutual_exclusion(self):
        lock = GLOBALS + 0x10
        cell = GLOBALS + 0x18
        def make(n_incr):
            b = ProgramBuilder("w")
            b.ldi(5, n_incr)
            b.ldi(6, 0)
            loop = b.place(b.label("loop"))
            b.ldi(1, lock)
            b.spin_lock(1, 2)
            b.ldi(3, cell)
            b.ld(4, 3, 0)
            b.addi(4, 4, 1)
            b.st(4, 3, 0)
            b.spin_unlock(1)
            b.addi(6, 6, 1)
            b.blt(6, 5, loop)
            b.halt()
            return b.build()
        progs = [make(25) for _ in range(4)]
        machine, res = run_image(make_image(progs))
        assert res.completed
        assert machine.dram.read_word(cell) or True  # value may be cached
        # read back through a fresh load on thread 0's view: verify via L2
        bank = machine.amap.bank_of(cell)
        loc = machine.l2states[bank].lookup(cell)
        value = (
            machine.l2states[bank].lines[loc[0]][loc[1]].data[
                machine.amap.word_in_line(cell)
            ]
            if loc
            else machine.dram.read_word(cell)
        )
        assert value == 100

    def test_barrier_synchronizes(self):
        bar = GLOBALS + 0x20
        def make(tid):
            b = ProgramBuilder("w")
            b.ldi(1, bar)
            b.barrier(1, 4, 2, 3)
            b.ldi(4, tid)
            b.ldi(5, 1)
            b.out(4, 5)
            b.halt()
            return b.build()
        _m, res = run_image(make_image([make(t) for t in range(4)]))
        assert res.completed
        assert res.output == {0: 1, 1: 1, 2: 1, 3: 1}


class TestOutcomeDetection:
    def test_bad_pointer_traps(self):
        b = ProgramBuilder("t")
        b.ldi(1, 0x9999000)  # outside every region
        b.ld(2, 1, 0)
        b.halt()
        h = ProgramBuilder("h")
        h.halt()
        _m, res = run_image(make_image([b.build(), h.build()]))
        assert not res.completed
        assert res.trap is not None
        assert res.trap.kind is TrapKind.BAD_ADDR

    def test_infinite_loop_detected_by_cap(self):
        b = ProgramBuilder("t")
        loop = b.place(b.label("loop"))
        b.jmp(loop)
        h = ProgramBuilder("h")
        h.halt()
        machine = Machine(CFG)
        machine.load_workload(make_image([b.build(), h.build()]))
        res = machine.run(hang_factor_cycles=5_000)
        assert res.hung

    def test_deadlock_detected_by_watchdog(self):
        """A thread waiting on a never-released lock cell set to 1."""
        lock = GLOBALS + 0x30
        b = ProgramBuilder("t")
        b.ldi(1, lock)
        b.spin_lock(1, 2)  # never succeeds: initialized to 1
        b.halt()
        h = ProgramBuilder("h")
        h.halt()
        machine = Machine(CFG)
        machine.load_workload(make_image([b.build(), h.build()], init={lock: 1}))
        res = machine.run(max_cycles=200_000)
        assert res.hung


class TestDeterminismAndSnapshots:
    def _counter_image(self):
        progs = []
        for t in range(4):
            b = ProgramBuilder("w")
            b.ldi(1, GLOBALS + 0x40)
            b.ldi(2, 1)
            for _ in range(10):
                b.faa(3, 1, 2)
            b.ldi(4, t)
            b.out(4, 3)
            b.halt()
            progs.append(b.build())
        return make_image(progs)

    def test_two_runs_identical(self):
        m1, r1 = run_image(self._counter_image())
        m2, r2 = run_image(self._counter_image())
        assert r1.cycles == r2.cycles
        assert r1.output == r2.output

    def test_snapshot_restore_replays_identically(self):
        machine = Machine(CFG)
        machine.load_workload(self._counter_image())
        machine.run_cycles(50)
        snap = machine.snapshot()
        res1 = machine.run()
        machine.restore(snap)
        res2 = machine.run()
        assert res1.output == res2.output
        assert res1.cycles == res2.cycles

    def test_restore_resets_corrupt_watch(self):
        machine = Machine(CFG)
        machine.load_workload(self._counter_image())
        snap = machine.snapshot()
        machine.corrupt_watch = {0x40}
        machine.restore(snap)
        assert machine.corrupt_watch == set()


class TestMachineServices:
    def test_region_overlap_rejected(self):
        machine = Machine(CFG)
        machine.alloc_region(0x1000, 0x100, "a")
        with pytest.raises(ValueError):
            machine.alloc_region(0x1080, 0x100, "b")

    def test_region_validation(self):
        machine = Machine(CFG)
        with pytest.raises(ValueError):
            machine.alloc_region(0x1001, 0x100, "misaligned")

    def test_check_addr(self):
        machine = Machine(CFG)
        machine.alloc_region(0x1000, 0x100, "a")
        assert machine._check_addr(0x1000)
        assert machine._check_addr(0x10F8)
        assert not machine._check_addr(0x1100)
        assert not machine._check_addr(0xF00)

    def test_dma_write_coherent_with_l2(self):
        machine = Machine(CFG)
        machine.alloc_region(DATA, 0x1000, "data")
        # put a line into the L2 by a functional store through the bank
        bank = machine.amap.bank_of(DATA)
        machine.l2states[bank].install(DATA, [0] * 8)
        machine.dma_write_word(DATA, 0xABCD)
        loc = machine.l2states[bank].lookup(DATA)
        line = machine.l2states[bank].lines[loc[0]][loc[1]]
        assert line.data[0] == 0xABCD
        assert machine.dram.read_word(DATA) == 0xABCD

    def test_store_log_recorded(self):
        b = ProgramBuilder("t")
        b.ldi(1, DATA)
        b.ldi(2, 5)
        b.st(2, 1, 0)
        b.halt()
        h = ProgramBuilder("h")
        h.halt()
        machine, res = run_image(make_image([b.build(), h.build()]))
        assert DATA in machine.last_store_cycle

    def test_too_many_threads_rejected(self):
        b = ProgramBuilder("t")
        b.halt()
        progs = [b.build()] * (CFG.total_threads + 1)
        machine = Machine(CFG)
        with pytest.raises(ValueError):
            machine.load_workload(make_image(progs))
