"""Sweep-level result caching (repro.api.executor.CachingExecutor)."""

from repro.api import (
    CachingExecutor,
    ExperimentSpec,
    Grid,
    SerialExecutor,
    dumps_canonical,
    load_cached_result,
    make_executor,
    result_cache_path,
)
from repro.system.machine import MachineConfig

CFG = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8)


class CountingExecutor:
    """Serial executor that records how many specs it actually ran."""

    def __init__(self):
        self.inner = SerialExecutor()
        self.executed: list[int] = []

    def run(self, specs):
        self.executed.append(len(specs))
        return self.inner.run(specs)


def _grid_specs():
    return Grid(
        components=("l2c", "mcu"),
        benchmarks=("fft",),
        seeds=(2015,),
        mode="injection",
        n=2,
        machine=CFG,
        scale=5e-6,
    ).specs()


def test_second_sweep_runs_zero_cells(tmp_path):
    specs = _grid_specs()
    counting = CountingExecutor()
    executor = CachingExecutor(tmp_path / "cache", counting)

    first = executor.run(specs)
    assert counting.executed == [len(specs)]
    assert executor.last_misses == len(specs)
    assert executor.last_hits == 0

    second = executor.run(specs)
    # zero re-executions: the inner executor never saw the second batch
    assert counting.executed == [len(specs)]
    assert executor.last_misses == 0
    assert executor.last_hits == len(specs)

    blobs1 = [dumps_canonical(r.to_dict()) for r in first]
    blobs2 = [dumps_canonical(r.to_dict()) for r in second]
    assert blobs1 == blobs2


def test_partial_hits_only_run_missing_cells(tmp_path):
    specs = _grid_specs()
    counting = CountingExecutor()
    executor = CachingExecutor(tmp_path / "cache", counting)
    executor.run(specs[:1])
    assert counting.executed == [1]
    results = executor.run(specs)
    assert counting.executed == [1, len(specs) - 1]
    assert executor.last_hits == 1
    # results still in spec order
    for spec, result in zip(specs, results):
        assert result.spec == spec


def test_digest_is_stable_and_spec_sensitive():
    spec = ExperimentSpec(
        benchmark="fft", component="l2c", machine=CFG, scale=5e-6, n=2
    )
    assert spec.digest() == spec.with_(n=2).digest()
    assert spec.digest() != spec.with_(n=3).digest()
    assert spec.digest() != spec.with_(seed=1).digest()
    assert spec.digest() != spec.with_(component="mcu").digest()


def test_tampered_cache_entry_is_a_miss(tmp_path):
    specs = _grid_specs()[:1]
    counting = CountingExecutor()
    executor = CachingExecutor(tmp_path / "cache", counting)
    (result,) = executor.run(specs)
    # overwrite the cached file with a result for a DIFFERENT spec
    other = result.spec.with_(seed=999)
    path = executor._path_for(specs[0])
    import json

    data = json.loads(path.read_text())
    data["spec"]["seed"] = 999
    path.write_text(dumps_canonical(data))
    del other
    executor.run(specs)
    assert counting.executed == [1, 1]  # re-ran despite the file existing


def test_truncated_cache_entry_is_a_miss(tmp_path):
    """An interrupted write must not poison the cache (it is a miss)."""
    specs = _grid_specs()[:1]
    counting = CountingExecutor()
    executor = CachingExecutor(tmp_path / "cache", counting)
    executor.run(specs)
    path = executor._path_for(specs[0])
    path.write_text(path.read_text()[: 40])  # truncated mid-JSON
    (result,) = executor.run(specs)
    assert counting.executed == [1, 1]
    assert result.spec == specs[0]
    # and the entry was repaired on disk
    (again,) = executor.run(specs)
    assert counting.executed == [1, 1]


def test_make_executor_wraps_with_cache(tmp_path):
    executor = make_executor(workers=1, cache_dir=tmp_path / "c")
    assert isinstance(executor, CachingExecutor)
    assert make_executor(workers=1).__class__ is SerialExecutor


# ----------------------------------------------------------------------
# concurrent writers (the cluster result bus shares one cache directory)
# ----------------------------------------------------------------------
def _hammer_store(cache_dir, rounds):
    """Publish the same cell's result repeatedly (child process body)."""
    from repro.api import (
        SerialExecutor,
        result_cache_path,
        store_cached_result,
    )

    spec = _grid_specs()[0]
    (result,) = SerialExecutor().run([spec])
    path = result_cache_path(cache_dir, spec)
    for _ in range(rounds):
        store_cached_result(path, result)


def test_concurrent_writers_same_digest(tmp_path):
    """Two processes publishing the same digest must never collide.

    The regression this pins down: a shared ``<digest>.json.tmp``
    staging name let one writer rename the other's half-written temp
    file (or crash on a vanished one).  Unique per-writer temp names +
    atomic rename make last-writer-wins safe -- identical specs produce
    byte-identical files, so *which* writer wins never matters.
    """
    import multiprocessing

    cache_dir = tmp_path / "bus"
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(target=_hammer_store, args=(cache_dir, 40))
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    assert [p.exitcode for p in procs] == [0, 0]

    spec = _grid_specs()[0]
    path = result_cache_path(cache_dir, spec)
    cached, stale = load_cached_result(path, spec)
    assert cached is not None and not stale
    assert dumps_canonical(cached.to_dict()) == dumps_canonical(
        SerialExecutor().run([spec])[0].to_dict()
    )
    # no staging debris left behind
    assert list(cache_dir.glob("*.tmp")) == []
