"""Chaos scenarios against the execution fabric: real process kills,
frozen workers, corrupted bus bytes, and lossy protocol transports.

Every scenario ends on the same two assertions the resilience layer
exists to defend: the surviving (or resumed) sweep is byte-identical to
an uninterrupted serial run, and the progress/journal accounting stays
coherent.  See :mod:`repro.resilience.chaos` for the fault toolkit.
"""

import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.api import (
    CachingExecutor,
    Grid,
    ParallelExecutor,
    SerialExecutor,
    dumps_canonical,
    result_cache_path,
)
from repro.cli import main
from repro.cluster import ClusterExecutor, LocalLauncher
from repro.obs import ProgressState
from repro.resilience import RetryPolicy, SweepJournal
from repro.resilience.chaos import (
    ChaosLauncher,
    LineChaos,
    corrupt_entry,
    sigcont,
    sigkill,
    sigstop,
    truncate_entry,
    wait_for,
)
from repro.system.machine import MachineConfig

CFG = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8)

#: Enough per-cell wall time (~0.3s at n=8) that a fault injected at
#: ``cell_start`` always lands while the cell is still running.
GRID = Grid(
    components=("l2c", "mcu", "ccx"),
    benchmarks=("fft", "radi"),
    seeds=(2015,),
    mode="injection",
    n=8,
    machine=CFG,
    scale=5e-6,
)

#: Zero-backoff so recovery paths never sleep; a 1.5s deadline is ~5x a
#: cell's runtime, so healthy cells never trip it.
DEADLINE_RETRY = RetryPolicy(
    max_attempts=5, backoff_base=0.0, cell_timeout=1.5
)


def _blobs(results):
    return [dumps_canonical(r.to_dict()) for r in results]


@pytest.fixture(scope="module")
def serial_baseline():
    return _blobs(SerialExecutor().run(GRID.specs()))


# ----------------------------------------------------------------------
# coordinator SIGKILL -> --resume (the full CLI journal loop)
# ----------------------------------------------------------------------
SWEEP_ARGS = [
    "sweep",
    "--components", "l2c", "mcu", "ccx",
    "--benchmarks", "fft", "radi",
    "--n", "8",
    "--cores", "2", "--threads-per-core", "2", "--scale", "5e-6",
]


def test_coordinator_sigkill_then_resume_is_byte_identical(
    tmp_path, capsys
):
    baseline_file = tmp_path / "baseline.json"
    assert main([*SWEEP_ARGS, "--json", str(baseline_file)]) == 0
    baseline = json.loads(baseline_file.read_text())
    total = len(baseline["results"])
    capsys.readouterr()

    journal_dir = tmp_path / "journal"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", *SWEEP_ARGS,
            "--journal", str(journal_dir),
            "--json", str(tmp_path / "never-written.json"),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )

    def landed() -> int:
        try:
            return SweepJournal.load(journal_dir).counts()["landed"]
        except (FileNotFoundError, ValueError):
            return 0

    try:
        # journal flushes are atomic renames, so polling reads are
        # always whole manifests; kill as soon as real progress landed
        assert wait_for(
            lambda: landed() >= 1 and proc.poll() is None, timeout=60.0
        ), "the journaled sweep never landed a cell"
        sigkill(proc.pid)
        proc.wait(timeout=30)
    finally:
        proc.kill()
    assert proc.returncode == -signal.SIGKILL

    survived = SweepJournal.load(journal_dir)
    landed_at_kill = survived.counts()["landed"]
    assert 1 <= landed_at_kill < total, "kill landed outside the window"
    assert survived.unlanded()  # the resume has real work to do

    resumed_file = tmp_path / "resumed.json"
    assert main(
        ["sweep", "--resume", str(journal_dir), "--json", str(resumed_file)]
    ) == 0
    out = capsys.readouterr().out
    resumed = json.loads(resumed_file.read_text())
    # byte-identity: the interrupted+resumed sweep equals the clean run
    assert resumed["results"] == baseline["results"]
    assert resumed["grid"] == baseline["grid"]
    # only unlanded cells recomputed: every landed cell replayed as a
    # bus hit (reconcile may flip cells the journal missed at kill time)
    assert "resuming journal" in out
    hits_line = next(
        line for line in out.splitlines() if "result cache" in line
    )
    hits = int(hits_line.split(":")[-1].split("hits")[0].strip())
    misses = int(hits_line.split(",")[-1].split("misses")[0].strip())
    assert hits >= landed_at_kill
    assert hits + misses == total
    assert misses == total - hits
    assert f"{total}/{total} cells landed" in out
    assert SweepJournal.load(journal_dir).unlanded() == []


# ----------------------------------------------------------------------
# frozen (SIGSTOPped) workers vs the per-cell deadline
# ----------------------------------------------------------------------
def _freeze_first_cell_start(events, frozen):
    """SIGSTOP the worker hosting the first observed cell_start: the
    'hung worker' fault -- alive, unresponsive, cell never finishing."""

    def on_event(event):
        events.append(event)
        if (
            event.get("type") == "cell_start"
            and not frozen
            and event.get("worker")
        ):
            frozen.append(event["worker"])
            sigstop(event["worker"])

    return on_event


def test_parallel_sigstopped_worker_hits_deadline_and_recovers(
    serial_baseline,
):
    specs = GRID.specs()
    events, frozen = [], []
    state = ProgressState(total=len(specs))
    hook = _freeze_first_cell_start(events, frozen)

    def on_event(event):
        hook(event)
        state.handle(event)

    executor = ParallelExecutor(workers=2, retry=DEADLINE_RETRY)
    try:
        results = executor.run(specs, on_event=on_event)
    finally:
        for pid in frozen:
            sigcont(pid)  # no-op once the deadline SIGKILLed it
    assert frozen, "no cell_start ever reported a worker pid"
    assert _blobs(results) == serial_baseline
    timeouts = [e for e in events if e["type"] == "cell_timeout"]
    assert timeouts, "the frozen cell never tripped its deadline"
    assert timeouts[0]["worker"] == frozen[0]
    assert timeouts[0]["timeout"] == DEADLINE_RETRY.cell_timeout
    report = state.report()
    assert report["done"] == len(specs)
    assert report["malformed_events"] == 0
    assert report["timeouts"] >= 1


def test_cluster_sigstopped_worker_hits_deadline_and_recovers(
    tmp_path, serial_baseline
):
    specs = GRID.specs()
    events, frozen = [], []
    state = ProgressState(total=len(specs))
    hook = _freeze_first_cell_start(events, frozen)

    def on_event(event):
        hook(event)
        state.handle(event)

    executor = ClusterExecutor(
        workers=2,
        cache_dir=tmp_path / "bus",
        heartbeat_interval=0.2,
        # a frozen worker also stops heartbeating; park that detector so
        # the *deadline* path is provably what recovers the cell
        heartbeat_timeout=60.0,
        retry=DEADLINE_RETRY,
    )
    try:
        results = executor.run(specs, on_event=on_event)
    finally:
        for pid in frozen:
            sigcont(pid)
    assert frozen, "no cell_start ever reported a worker pid"
    assert _blobs(results) == serial_baseline
    assert executor.last_timeouts >= 1
    timeouts = [e for e in events if e["type"] == "cell_timeout"]
    assert timeouts and timeouts[0]["worker"] == frozen[0]
    # the killed worker's cells were re-queued, not lost
    assert any(e["type"] == "cell_retry" for e in events)
    report = state.report()
    assert report["done"] == len(specs)
    assert report["malformed_events"] == 0


def test_cluster_sigkilled_worker_with_journal_stays_coherent(
    tmp_path, serial_baseline
):
    specs = GRID.specs()
    journal = SweepJournal.create(
        tmp_path / "journal",
        {"note": "cluster chaos"},  # grid dict unused by handle_event
        specs,
        bus=tmp_path / "bus",
    )
    killed = []

    def on_event(event):
        journal.handle_event(event)
        if (
            event.get("type") == "cell_done"
            and not killed
            and event.get("worker")
        ):
            killed.append(event["worker"])
            sigkill(event["worker"])

    executor = ClusterExecutor(
        workers=2,
        cache_dir=tmp_path / "bus",
        heartbeat_interval=0.2,
        retry=RetryPolicy(max_attempts=5, backoff_base=0.0),
    )
    results = executor.run(specs, on_event=on_event)
    assert killed
    assert executor.last_worker_deaths == 1
    assert _blobs(results) == serial_baseline
    journal.reconcile(specs)
    assert journal.unlanded() == []
    assert SweepJournal.load(journal.directory).counts()["landed"] == len(
        specs
    )


# ----------------------------------------------------------------------
# bus damage: corrupt / truncated entries recompute byte-identically
# ----------------------------------------------------------------------
def test_damaged_bus_entries_recompute_byte_identically(
    tmp_path, serial_baseline
):
    specs = GRID.specs()
    cache = tmp_path / "cache"
    first = CachingExecutor(cache, SerialExecutor()).run(specs)
    assert _blobs(first) == serial_baseline
    corrupt_entry(result_cache_path(cache, specs[0]))
    truncate_entry(result_cache_path(cache, specs[1]))

    events = []
    executor = CachingExecutor(cache, SerialExecutor())
    again = executor.run(specs, on_event=events.append)
    assert _blobs(again) == serial_baseline
    stale = [e["index"] for e in events if e["type"] == "cache_stale"]
    assert stale == [0, 1]
    assert executor.last_hits == len(specs) - 2
    # the recompute re-landed valid entries under the same digests
    from repro.resilience import fsck_cache

    assert fsck_cache(cache).issues == 0


# ----------------------------------------------------------------------
# lossy protocol transports
# ----------------------------------------------------------------------
class _DropFirstLanding:
    """Targeted line chaos: on a single worker stream, swallow one
    cell's ``cell_done`` event *and* its ``cell_result`` ack.

    That is the nastiest protocol loss: the result is durable on the
    bus, the coordinator's running-cell shadow still holds the cell
    (its ``cell_done`` never arrived), but the landing ack is gone --
    only the per-cell deadline can recover it.
    """

    def __init__(self) -> None:
        self.claimed = None  # the one stream we damage
        self.dropped = 0
        self._lock = threading.Lock()

    def for_worker(self, worker_id: int) -> int:
        return worker_id

    def apply(self, worker_id: int, line: str) -> "str | None":
        with self._lock:
            if '"type":"cell_done"' in line and self.claimed is None:
                self.claimed = worker_id
                self.dropped += 1
                return None
            if (
                worker_id == self.claimed
                and self.dropped == 1
                and '"type":"cell_result"' in line
            ):
                self.dropped += 1
                return None
        return line


def test_dropped_landing_ack_recovers_via_deadline(
    tmp_path, serial_baseline
):
    specs = GRID.specs()
    chaos = _DropFirstLanding()
    launcher = ChaosLauncher(LocalLauncher(), chaos)
    events = []
    executor = ClusterExecutor(
        workers=2,
        launcher=launcher,
        cache_dir=tmp_path / "bus",
        heartbeat_interval=0.2,
        heartbeat_timeout=60.0,
        retry=DEADLINE_RETRY,
    )
    results = executor.run(specs, on_event=events.append)
    assert chaos.dropped == 2, "no landing was ever swallowed"
    assert _blobs(results) == serial_baseline
    # the silent cell tripped its deadline and re-queued; the retry
    # resolved as a free bus hit (the first attempt's rename landed)
    assert executor.last_timeouts >= 1
    assert any(e["type"] == "cell_timeout" for e in events)
    assert any(e["type"] == "cell_retry" for e in events)


def test_randomly_lossy_garbled_transport_stays_byte_identical(
    tmp_path, serial_baseline
):
    specs = GRID.specs()
    # protect the landing acks (livelock-free by construction: a lost
    # ack is the *deadline's* job, proven above) and the handshake;
    # everything else -- telemetry, heartbeats -- is fair game
    chaos = LineChaos(
        drop=0.2, garble=0.2, seed=7, protect=("ready", "cell_result")
    )
    launcher = ChaosLauncher(LocalLauncher(), chaos)
    state = ProgressState(total=len(specs))
    executor = ClusterExecutor(
        workers=2,
        launcher=launcher,
        cache_dir=tmp_path / "bus",
        heartbeat_interval=0.2,
        retry=RetryPolicy(max_attempts=5, backoff_base=0.0),
    )
    results = executor.run(specs, on_event=state.handle)
    assert launcher.dropped + launcher.garbled > 0, (
        "chaos never touched a line; the scenario tested nothing"
    )
    assert _blobs(results) == serial_baseline
    # garbled lines die in parse_line, never in the event stream
    assert state.report()["malformed_events"] == 0


# ----------------------------------------------------------------------
# pooled worker agents (repro worker --workers N)
# ----------------------------------------------------------------------
def test_cluster_with_pooled_workers_is_byte_identical(
    tmp_path, serial_baseline
):
    specs = GRID.specs()
    state = ProgressState(total=len(specs))
    executor = ClusterExecutor(
        workers=2,
        worker_procs=2,  # 2 agents x 2 pool processes each
        cache_dir=tmp_path / "bus",
        heartbeat_interval=0.2,
        retry=RetryPolicy(max_attempts=5, backoff_base=0.0),
    )
    results = executor.run(specs, on_event=state.handle)
    assert _blobs(results) == serial_baseline
    report = state.report()
    assert report["done"] == len(specs)
    assert report["malformed_events"] == 0


# ----------------------------------------------------------------------
# the serve daemon: SIGKILL mid-sweep -> restart -> resubmit, overload
# ----------------------------------------------------------------------
def _serve_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_daemon(state_dir, *extra):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir), "--port", "0", *extra,
        ],
        env=_serve_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _endpoint(state_dir, proc, timeout=30.0):
    from repro.serve import endpoint_path

    path = endpoint_path(state_dir)
    pid = proc.pid
    assert wait_for(
        lambda: proc.poll() is None
        and path.is_file()
        and json.loads(path.read_text()).get("pid") == pid,
        timeout=timeout,
    ), "the daemon never advertised its endpoint"
    return json.loads(path.read_text())["url"]


def test_daemon_sigkill_restart_resubmit_is_byte_identical(tmp_path):
    """The tentpole chaos scenario: SIGKILL the daemon mid-sweep, start
    a fresh daemon on the same state dir, resubmit the identical
    campaign -- the result is byte-identical to a clean serial run and
    only the unlanded cells recompute."""
    from repro.api.result import SCHEMA_VERSION
    from repro.serve import ServeClient

    baseline = (
        dumps_canonical(
            {
                "schema_version": SCHEMA_VERSION,
                "grid": GRID.to_dict(),
                "results": [
                    r.to_dict() for r in SerialExecutor().run(GRID.specs())
                ],
            }
        )
        + "\n"
    ).encode("utf-8")
    total = len(GRID.specs())
    state_dir = tmp_path / "state"
    request = {"grid": GRID.to_dict()}

    proc = _start_daemon(state_dir)
    try:
        client = ServeClient(_endpoint(state_dir, proc), client_id="chaos")
        job_id = client.submit(request)["id"]

        def landed() -> int:
            view = client.job(job_id)
            return view["landed"] or 0

        # kill as soon as real progress landed but before completion
        assert wait_for(
            lambda: 1 <= landed() < total
            or client.job(job_id)["status"] == "done",
            timeout=120.0,
        ), "the daemon never landed a cell"
        landed_at_kill = landed()
        assert landed_at_kill < total, (
            "the sweep finished before the kill window; shrink n"
        )
        sigkill(proc.pid)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
    finally:
        proc.kill()

    # the journal survived the kill with real unfinished work
    journal = SweepJournal.load(state_dir / "jobs" / job_id)
    assert journal.unlanded(), "nothing left to resume; kill came too late"

    proc = _start_daemon(state_dir)
    try:
        client = ServeClient(_endpoint(state_dir, proc), client_id="chaos")
        # the restarted daemon recovered the interrupted job; the
        # resubmission dedupes onto it rather than spawning a twin
        view = client.submit(request)
        assert view["id"] == job_id and view["created"] is False
        raw = client.result_bytes(job_id, wait=True, timeout=180.0)
        assert raw == baseline
        final = client.job(job_id)
        assert final["resumes"] >= 1
        # only unlanded cells recomputed: every cell landed pre-kill
        # replayed as a bus hit on the resumed run
        assert final["hits"] >= landed_at_kill
        assert final["hits"] + final["misses"] + final["stale"] == total
    finally:
        sigkill(proc.pid)
        proc.wait(timeout=30)


def test_daemon_overload_sheds_load_with_retry_after(tmp_path):
    """Admission control under pressure: a saturated daemon answers
    429 (client cap) and 503 (queue full) with Retry-After instead of
    accepting unbounded work, and every admitted job still lands."""
    from repro.serve import (
        CampaignService,
        ClientBusy,
        QueueFull,
        make_server,
        ServeClient,
    )

    gate = threading.Event()
    service = CampaignService(
        tmp_path / "state",
        queue_limit=1,
        per_client_limit=1,
        before_job=lambda job: gate.wait(timeout=60.0),
    )
    service.start()
    server = make_server(service, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_address[1]}"

    spec = GRID.specs()[0]

    def request(i):
        return {"spec": dict(spec.to_dict(), n=i + 1)}

    from repro.serve import ServeError

    try:
        alice = ServeClient(url, client_id="alice")
        bob = ServeClient(url, client_id="bob")
        carol = ServeClient(url, client_id="carol")
        first = alice.submit(request(0))  # claimed by the parked runner
        assert wait_for(
            lambda: alice.job(first["id"])["status"] == "running",
            timeout=30.0,
        )
        # alice is at her in-flight cap -> 429 + Retry-After
        with pytest.raises(ServeError) as busy:
            alice.submit(request(1), retry=False)
        assert busy.value.status == 429
        assert busy.value.body["retry_after"] >= 1
        second = bob.submit(request(2))  # fills the queue (limit 1)
        # the queue is full -> 503 + Retry-After for anyone else
        with pytest.raises(ServeError) as full:
            carol.submit(request(3), retry=False)
        assert full.value.status == 503
        assert full.value.body["retry_after"] >= 1
        stats = carol.stats()
        assert stats["counters"]["rejected_busy"] >= 1
        assert stats["counters"]["rejected_full"] >= 1
        # release the gate: every admitted job completes, none lost
        gate.set()
        for client, view in ((alice, first), (bob, second)):
            raw = client.result_bytes(
                view["id"], wait=True, timeout=120.0
            )
            assert raw.endswith(b"\n")
        assert carol.stats()["jobs"] == {"done": 2}
    finally:
        gate.set()
        server.shutdown()
        server.server_close()
        service.close(timeout=30.0)
