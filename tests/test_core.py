"""Tests for the ISA, program builder and core model (repro.core)."""

import pytest

from repro.core.cpu import Core, ThreadState, TrapKind, STORE_CREDITS
from repro.core.isa import Instr, Op
from repro.core.program import ProgramBuilder
from repro.soc.packets import CpxPacket, CpxType, PcxPacket, PcxType


def run_alu_program(build, cycles=200):
    """Run a single-thread program with no memory system; returns thread."""
    core = Core(
        0,
        issue_pcx=lambda pkt: True,
        check_addr=lambda addr: True,
        write_output=lambda s, v: None,
        alloc_reqid=lambda: 1,
    )
    b = ProgramBuilder("t")
    build(b)
    thread = core.add_thread(b.build())
    for cycle in range(cycles):
        core.step(cycle)
        if thread.state in (ThreadState.HALTED, ThreadState.TRAPPED):
            break
    return thread


class TestProgramBuilder:
    def test_label_resolution(self):
        b = ProgramBuilder("p")
        loop = b.label("loop")
        b.place(loop)
        b.jmp(loop)
        prog = b.build()
        assert prog[0].imm == 0

    def test_forward_label(self):
        b = ProgramBuilder("p")
        b.jmp("end")
        b.nop()
        b.place("end")
        b.halt()
        prog = b.build()
        assert prog[0].imm == 2

    def test_unplaced_label_raises(self):
        b = ProgramBuilder("p")
        b.jmp("nowhere")
        with pytest.raises(ValueError):
            b.build()

    def test_double_place_raises(self):
        b = ProgramBuilder("p")
        lbl = b.place("x")
        with pytest.raises(ValueError):
            b.place(lbl)

    def test_register_bounds_validated(self):
        with pytest.raises(ValueError):
            Instr(Op.ADD, rd=16)


class TestAluSemantics:
    def test_arith(self):
        t = run_alu_program(lambda b: (b.ldi(1, 7), b.ldi(2, 5), b.add(3, 1, 2),
                                       b.sub(4, 1, 2), b.mul(5, 1, 2), b.halt()))
        assert t.regs[3] == 12 and t.regs[4] == 2 and t.regs[5] == 35

    def test_wraparound_64bit(self):
        t = run_alu_program(lambda b: (b.ldi(1, (1 << 64) - 1), b.addi(1, 1, 1), b.halt()))
        assert t.regs[1] == 0

    def test_sub_underflow_wraps(self):
        t = run_alu_program(lambda b: (b.ldi(1, 0), b.addi(1, 1, -1), b.halt()))
        assert t.regs[1] == (1 << 64) - 1

    def test_logic_and_shifts(self):
        t = run_alu_program(lambda b: (b.ldi(1, 0b1100), b.ldi(2, 0b1010),
                                       b.and_(3, 1, 2), b.or_(4, 1, 2), b.xor(5, 1, 2),
                                       b.shli(6, 1, 2), b.shri(7, 1, 2), b.halt()))
        assert t.regs[3] == 0b1000 and t.regs[4] == 0b1110 and t.regs[5] == 0b0110
        assert t.regs[6] == 0b110000 and t.regs[7] == 0b11

    def test_cmplt_unsigned(self):
        t = run_alu_program(lambda b: (b.ldi(1, 3), b.ldi(2, 9),
                                       b.cmplt(3, 1, 2), b.cmplt(4, 2, 1), b.halt()))
        assert t.regs[3] == 1 and t.regs[4] == 0

    def test_div_mod(self):
        t = run_alu_program(lambda b: (b.ldi(1, 17), b.ldi(2, 5),
                                       b.div(3, 1, 2), b.mod(4, 1, 2), b.halt()))
        assert t.regs[3] == 3 and t.regs[4] == 2

    def test_div_by_zero_traps(self):
        t = run_alu_program(lambda b: (b.ldi(1, 17), b.div(3, 1, 0), b.halt()))
        assert t.trap is not None and t.trap.kind is TrapKind.ILLEGAL

    def test_r0_hardwired_zero(self):
        t = run_alu_program(lambda b: (b.ldi(0, 99), b.addi(1, 0, 1), b.halt()))
        assert t.regs[0] == 0 and t.regs[1] == 1

    def test_branch_loop(self):
        def build(b):
            b.ldi(1, 0)
            loop = b.place(b.label("loop"))
            b.addi(1, 1, 1)
            b.ldi(2, 5)
            b.blt(1, 2, "loop")
            b.halt()
        t = run_alu_program(build)
        assert t.regs[1] == 5

    def test_assert_eq_traps_on_mismatch(self):
        t = run_alu_program(lambda b: (b.ldi(1, 1), b.ldi(2, 2),
                                       b.assert_eq(1, 2), b.halt()))
        assert t.trap.kind is TrapKind.ASSERT_FAIL

    def test_pc_past_end_traps(self):
        t = run_alu_program(lambda b: b.nop())
        assert t.trap is not None and t.trap.kind is TrapKind.BAD_PC


class TestMemoryInterface:
    def make_core(self, accept=True, valid=True):
        self.issued = []
        reqids = iter(range(1, 1000))
        core = Core(
            0,
            issue_pcx=lambda pkt: (self.issued.append(pkt), accept)[1],
            check_addr=lambda addr: valid,
            write_output=lambda s, v: None,
            alloc_reqid=lambda: next(reqids),
        )
        return core

    def test_load_miss_stalls_until_cpx(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 0x100)
        b.ld(2, 1, 0)
        b.halt()
        t = core.add_thread(b.build())
        for c in range(5):
            core.step(c)
        assert t.state is ThreadState.WAIT_MEM
        pkt = self.issued[0]
        assert pkt.ptype is PcxType.LOAD and pkt.addr == 0x100
        core.deliver_cpx(
            CpxPacket(CpxType.LOAD_RET, 0, 0, 0x100, 0x55, pkt.reqid)
        )
        core.step(6)
        assert t.regs[2] == 0x55

    def test_l1_hit_after_fill(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 0x100)
        b.ld(2, 1, 0)
        b.ld(3, 1, 0)  # second load should hit the L1
        b.halt()
        t = core.add_thread(b.build())
        core.step(0)
        core.step(1)
        core.deliver_cpx(CpxPacket(CpxType.LOAD_RET, 0, 0, 0x100, 7, self.issued[0].reqid))
        for c in range(2, 6):
            core.step(c)
        assert t.regs[3] == 7
        assert len(self.issued) == 1  # only one PCX went out

    def test_store_is_posted(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 0x200)
        b.ldi(2, 42)
        b.st(2, 1, 0)
        b.ldi(3, 1)  # continues without waiting for the ack
        b.halt()
        t = core.add_thread(b.build())
        for c in range(6):
            core.step(c)
        assert t.state is ThreadState.HALTED
        assert t.stores_inflight == 1

    def test_store_allocates_l1_for_own_loads(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 0x200)
        b.ldi(2, 42)
        b.st(2, 1, 0)
        b.ld(3, 1, 0)
        b.halt()
        t = core.add_thread(b.build())
        for c in range(6):
            core.step(c)
        assert t.regs[3] == 42

    def test_store_credit_exhaustion_stalls(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 0x200)
        b.ldi(2, 1)
        for i in range(STORE_CREDITS + 2):
            b.st(2, 1, 8 * i)
        b.halt()
        t = core.add_thread(b.build())
        for c in range(40):
            core.step(c)
        assert t.state is ThreadState.RETRY
        assert t.stores_inflight == STORE_CREDITS
        # acks free credits and let the thread finish
        for pkt in list(self.issued):
            if pkt.ptype is PcxType.STORE:
                core.deliver_cpx(
                    CpxPacket(CpxType.STORE_ACK, 0, 0, pkt.addr, 0, pkt.reqid)
                )
        for c in range(40, 80):
            core.step(c)
        assert t.state is ThreadState.HALTED

    def test_atomic_drains_stores_first(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 0x200)
        b.ldi(2, 1)
        b.st(2, 1, 0)
        b.tas(3, 1)
        b.halt()
        t = core.add_thread(b.build())
        for c in range(10):
            core.step(c)
        # only the store went out; the TAS waits for the ack
        assert [p.ptype for p in self.issued] == [PcxType.STORE]
        store = self.issued[0]
        core.deliver_cpx(CpxPacket(CpxType.STORE_ACK, 0, 0, store.addr, 0, store.reqid))
        for c in range(10, 20):
            core.step(c)
        assert PcxType.ATOMIC_TAS in [p.ptype for p in self.issued]

    def test_bad_address_traps(self):
        core = self.make_core(valid=False)
        b = ProgramBuilder("t")
        b.ldi(1, 0xDEAD00)
        b.ld(2, 1, 0)
        b.halt()
        t = core.add_thread(b.build())
        core.step(0)
        core.step(1)
        assert t.trap.kind is TrapKind.BAD_ADDR

    def test_misaligned_traps(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 0x101)
        b.ld(2, 1, 0)
        b.halt()
        t = core.add_thread(b.build())
        core.step(0)
        core.step(1)
        assert t.trap.kind is TrapKind.MISALIGNED

    def test_unmatched_cpx_dropped(self):
        core = self.make_core()
        core.add_thread(ProgramBuilder("t").build.__self__.build() if False else ProgramBuilder("t").build())
        core.deliver_cpx(CpxPacket(CpxType.LOAD_RET, 0, 0, 0x0, 0, 999))
        assert core.dropped_cpx == 1

    def test_invalidate_drops_line(self):
        core = self.make_core()
        core.l1_fill(0x100, 1)
        core.l1_fill(0x108, 2)
        core.deliver_cpx(CpxPacket(CpxType.INVALIDATE, 0, 0, 0x100, 0, 0))
        assert core.l1_lookup(0x100) is None
        assert core.l1_lookup(0x108) is None
        assert core.invalidations == 1

    def test_round_robin_fairness(self):
        core = self.make_core()
        progs = []
        for _ in range(2):
            b = ProgramBuilder("t")
            b.ldi(1, 0)
            for _i in range(10):
                b.addi(1, 1, 1)
            b.halt()
            progs.append(core.add_thread(b.build()))
        for c in range(30):
            core.step(c)
        assert all(t.state is ThreadState.HALTED for t in progs)

    def test_snapshot_restore(self):
        core = self.make_core()
        b = ProgramBuilder("t")
        b.ldi(1, 5)
        b.halt()
        t = core.add_thread(b.build())
        core.step(0)
        snap = core.snapshot()
        core.step(1)
        core.restore(snap)
        assert t.regs[1] == 5
        assert t.state is ThreadState.READY
