"""Tests for the L2C RTL model (repro.uncore.l2c)."""

import random

import pytest

from repro.mem.dram import Dram
from repro.mem.l2state import L2BankState
from repro.rtl.registers import FlipFlopClass
from repro.soc.address import AddressMap
from repro.soc.geometry import T2_GEOMETRY
from repro.soc.packets import CpxType, PcxPacket, PcxType
from repro.uncore.highlevel.l2c import HighLevelL2Bank
from repro.uncore.highlevel.mcu import HighLevelMcu
from repro.uncore.l2c import L2cRtl

AMAP = AddressMap(l2_banks=8, l2_sets=8, mcus=4)


def make_rtl(sink=None):
    return L2cRtl(0, AMAP, ways=4, send_mcu=sink if sink else (lambda r: None))


class Harness:
    """RTL L2C bank wired to a high-level MCU over real DRAM."""

    def __init__(self):
        self.dram = Dram()
        self.mcu_inbox = []
        self.replies = []
        self.rtl = L2cRtl(0, AMAP, ways=4, send_mcu=self.mcu_inbox.append)
        self.mcu = HighLevelMcu(0, self.dram, send_reply=self.replies.append)
        self.cycle = 0

    def run(self, pkts, max_cycles=8000):
        out = []
        pending = list(pkts)
        for _ in range(max_cycles):
            if pending and self.rtl.accept(pending[0], self.cycle):
                pending.pop(0)
            for req in self.mcu_inbox:
                self.mcu.accept(req, self.cycle)
            self.mcu_inbox.clear()
            out.extend(self.rtl.tick(self.cycle))
            self.mcu.tick(self.cycle)
            for rep in self.replies:
                self.rtl.deliver_mcu_reply(rep)
            self.replies.clear()
            self.cycle += 1
            if (
                not pending
                and self.rtl.in_flight() == 0
                and self.mcu.in_flight() == 0
            ):
                break
        return out


class TestInventory:
    def test_matches_table3_and_table4(self):
        m = make_rtl()
        spec = T2_GEOMETRY["l2c"]
        counts = m.flip_flop_count_by_class()
        assert m.flip_flop_count() == spec.flip_flops
        assert counts[FlipFlopClass.TARGET] == spec.target_ffs
        assert counts[FlipFlopClass.PROTECTED] == spec.protected_ffs
        assert counts[FlipFlopClass.INACTIVE] == spec.inactive_ffs

    def test_hardened_populations_match_sec64(self):
        m = make_rtl()
        timing = sum(
            r.flip_flops for r in m.registers().values() if r.timing_critical
        )
        config = sum(r.flip_flops for r in m.registers().values() if r.config)
        assert timing == 1_650  # paper Sec. 6.4 category 1
        assert config == 55  # paper Sec. 6.4 category 2

    def test_independent_of_cache_geometry(self):
        small = L2cRtl(0, AddressMap(l2_sets=8), 4, send_mcu=lambda r: None)
        large = L2cRtl(0, AddressMap(l2_sets=64), 8, send_mcu=lambda r: None)
        assert small.flip_flop_count() == large.flip_flop_count()


class TestProtocol:
    def test_load_after_store(self):
        h = Harness()
        out = h.run([
            PcxPacket(PcxType.STORE, 0, 0, 0x200, 0xAA, 1),
            PcxPacket(PcxType.LOAD, 1, 0, 0x200, 0, 2),
        ])
        load = [p for p in out if p.ctype is CpxType.LOAD_RET][0]
        assert load.data == 0xAA

    def test_store_miss_acks_before_fill_completes(self):
        """The T2 behaviour QRR must handle (paper Sec. 5/6): the store
        ack leaves while the line fill is still in the miss buffer."""
        h = Harness()
        pkt = PcxPacket(PcxType.STORE, 0, 0, 0x200, 1, 1)
        assert h.rtl.accept(pkt, 0)
        ack_cycle = None
        done_cycle = None
        for cycle in range(500):
            for req in h.mcu_inbox:
                h.mcu.accept(req, cycle)
            h.mcu_inbox.clear()
            out = h.rtl.tick(cycle)
            if any(p.ctype is CpxType.STORE_ACK for p in out) and ack_cycle is None:
                ack_cycle = cycle
            if h.rtl.store_miss_completions and done_cycle is None:
                done_cycle = cycle
            h.mcu.tick(cycle)
            for rep in h.replies:
                h.rtl.deliver_mcu_reply(rep)
            h.replies.clear()
            if done_cycle is not None:
                break
        assert ack_cycle is not None and done_cycle is not None
        assert ack_cycle < done_cycle

    def test_atomic_serialization(self):
        h = Harness()
        out = h.run([
            PcxPacket(PcxType.ATOMIC_TAS, 0, 0, 0x200, 0, 1),
            PcxPacket(PcxType.ATOMIC_TAS, 1, 0, 0x200, 0, 2),
        ])
        rets = {p.reqid: p.data for p in out if p.ctype is CpxType.ATOMIC_RET}
        assert rets == {1: 0, 2: 1}

    def test_directory_invalidation(self):
        h = Harness()
        out = h.run([
            PcxPacket(PcxType.LOAD, 2, 0, 0x200, 0, 1),
            PcxPacket(PcxType.STORE, 5, 0, 0x200, 9, 2),
        ])
        invs = [p for p in out if p.ctype is CpxType.INVALIDATE]
        assert [p.core for p in invs] == [2]

    def test_dirty_eviction_reaches_dram(self):
        h = Harness()
        pkts = [PcxPacket(PcxType.STORE, 0, 0, AMAP.rebuild_addr(t, 0, 0), t, t + 1)
                for t in range(6)]  # 6 tags, 4 ways: forces evictions
        h.run(pkts)
        written = [a for a in h.dram.words]
        assert written  # at least one writeback landed

    def test_input_backpressure(self):
        m = make_rtl()
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 0x200, 0, 1)
        accepted = sum(m.accept(pkt, 0) for _ in range(40))
        assert accepted == 16

    def test_in_flight_tracks_queue(self):
        m = make_rtl()
        assert m.in_flight() == 0
        m.accept(PcxPacket(PcxType.LOAD, 0, 0, 0x200, 0, 1), 0)
        assert m.in_flight() == 1


class TestStateTransfer:
    def test_roundtrip(self):
        state = L2BankState(0, AMAP, ways=4)
        state.install(0x200, list(range(8)), dirty=True)
        state.lines[AMAP.set_of(0x200)][0].directory = 0b101
        m = make_rtl()
        m.load_state(state)
        back = L2BankState(0, AMAP, ways=4)
        m.extract_state(back)
        assert back.snapshot() == state.snapshot()

    def test_corruption_carried_back(self):
        state = L2BankState(0, AMAP, ways=4)
        state.install(0x200, [7] * 8)
        m = make_rtl()
        m.load_state(state)
        # corrupt the data SRAM directly (as an injected error would)
        li = m._line_index(AMAP.set_of(0x200), 0)
        m.data_sram.write(li, m.data_sram.read(li) ^ 1)
        back = L2BankState(0, AMAP, ways=4)
        m.extract_state(back)
        loc = back.lookup(0x200)
        assert back.lines[loc[0]][loc[1]].data[0] == 6


class TestBenignity:
    def test_invalid_entry_field_mismatch_benign(self):
        a, b = make_rtl(), make_rtl()
        a.flip_bit("iq_data", 3, 10)  # entry 3 is invalid (empty queue)
        (m,) = a.compare(b)
        assert a.is_mismatch_benign(m)

    def test_valid_bit_mismatch_not_benign(self):
        a, b = make_rtl(), make_rtl()
        a.flip_bit("iq_valid", 3, 0)
        (m,) = a.compare(b)
        assert not a.is_mismatch_benign(m)

    def test_occupied_entry_field_not_benign(self):
        a, b = make_rtl(), make_rtl()
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 0x200, 0, 1)
        a.accept(pkt, 0)
        b.accept(pkt, 0)
        a.flip_bit("iq_addr", 0, 5)
        (m,) = a.compare(b)
        assert not a.is_mismatch_benign(m)

    def test_perf_counter_mismatch_benign(self):
        a, b = make_rtl(), make_rtl()
        a.perf_hits.write(5)
        (m,) = a.compare(b)
        assert a.is_mismatch_benign(m)

    def test_sram_mismatch_maps_to_highlevel(self):
        a, b = make_rtl(), make_rtl()
        a.data_sram.write(0, 1)
        (m,) = a.compare(b)
        assert a.mismatch_maps_to_highlevel(m)


class TestEquivalenceWithHighLevel:
    """The RTL model is architecturally equivalent to the functional
    model: identical per-request replies and identical combined
    L2-plus-DRAM memory view after drain."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_traffic_equivalence(self, seed):
        r = random.Random(seed)
        addrs = [(r.randrange(64) * 512) + (r.randrange(8) * 8) for _ in range(250)]
        pkts = [
            PcxPacket(
                r.choice([PcxType.LOAD, PcxType.STORE, PcxType.STORE,
                          PcxType.ATOMIC_ADD, PcxType.ATOMIC_TAS]),
                r.randrange(8), r.randrange(2), a, r.getrandbits(32), i + 1,
            )
            for i, a in enumerate(addrs)
        ]

        def run(make_server, dram):
            mcu_inbox, replies = [], []
            server = make_server(lambda req: mcu_inbox.append(req))
            mcu = HighLevelMcu(0, dram, send_reply=replies.append)
            pending = list(pkts)
            out = []
            for cycle in range(40_000):
                if pending and server.accept(pending[0], cycle):
                    pending.pop(0)
                for req in mcu_inbox:
                    mcu.accept(req, cycle)
                mcu_inbox.clear()
                out.extend(server.tick(cycle))
                mcu.tick(cycle)
                for rep in replies:
                    server.deliver_mcu_reply(rep)
                replies.clear()
                if (not pending and server.in_flight() == 0
                        and mcu.in_flight() == 0 and not mcu_inbox):
                    break
            assert server.in_flight() == 0
            return out, server

        def view(state, dram, a):
            if AMAP.bank_of(a) == 0:
                loc = state.lookup(a)
                if loc:
                    s, w = loc
                    return state.lines[s][w].data[AMAP.word_in_line(a)]
            return dram.read_word(a)

        dram1, dram2 = Dram(), Dram()
        for i in range(4096):
            v = random.Random(i).getrandbits(64)
            dram1.write_word(i * 8, v)
            dram2.write_word(i * 8, v)
        state_hl = L2BankState(0, AMAP, ways=4)
        out_hl, _ = run(
            lambda send: HighLevelL2Bank(0, state_hl, send_mcu=send), dram1
        )
        holder = {}

        def mk(send):
            holder["rtl"] = L2cRtl(0, AMAP, ways=4, send_mcu=send)
            return holder["rtl"]

        out_rtl, _ = run(mk, dram2)
        state_rtl = L2BankState(0, AMAP, ways=4)
        holder["rtl"].extract_state(state_rtl)

        def by_reqid(out):
            d = {}
            for p in out:
                if p.ctype is not CpxType.INVALIDATE:
                    d.setdefault(p.reqid, []).append(
                        (p.ctype, p.core, p.thread, p.addr, p.data)
                    )
            return d

        assert by_reqid(out_hl) == by_reqid(out_rtl)
        all_words = sorted(set(dram1.words) | set(dram2.words))
        bad = [
            a for a in all_words
            if view(state_hl, dram1, a) != view(state_rtl, dram2, a)
        ]
        assert bad == []
