"""Tests for SoC fabric: geometry, packets, address map (repro.soc)."""

import pytest
from hypothesis import given, strategies as st

from repro.soc.address import AddressMap, LINE_BYTES
from repro.soc.geometry import (
    HIGHLEVEL_STATE_BYTES,
    T2_GEOMETRY,
    UNCORE_TARGETS,
    chip_flip_flop_total,
    chip_gate_total,
)
from repro.soc.packets import CpxPacket, CpxType, PcxPacket, PcxType


class TestGeometry:
    """Table 3 and Table 4 constants."""

    def test_table3_flip_flops(self):
        assert T2_GEOMETRY["core"].flip_flops == 44_288
        assert T2_GEOMETRY["l2c"].flip_flops == 31_675
        assert T2_GEOMETRY["mcu"].flip_flops == 18_068
        assert T2_GEOMETRY["ccx"].flip_flops == 41_521
        assert T2_GEOMETRY["pcie"].flip_flops == 29_022
        assert T2_GEOMETRY["niu"].flip_flops == 135_699

    def test_table3_instances(self):
        assert T2_GEOMETRY["core"].instances == 8
        assert T2_GEOMETRY["l2c"].instances == 8
        assert T2_GEOMETRY["mcu"].instances == 4
        assert T2_GEOMETRY["ccx"].instances == 1

    def test_table4_split_sums_to_total(self):
        for comp in UNCORE_TARGETS:
            spec = T2_GEOMETRY[comp]
            assert (
                spec.target_ffs + spec.protected_ffs + spec.inactive_ffs
                == spec.flip_flops
            )

    def test_table4_target_fractions(self):
        """The percentages printed in Table 4."""
        assert T2_GEOMETRY["l2c"].target_fraction == pytest.approx(0.580, abs=0.001)
        assert T2_GEOMETRY["mcu"].target_fraction == pytest.approx(0.664, abs=0.001)
        assert T2_GEOMETRY["ccx"].target_fraction == pytest.approx(0.992, abs=0.001)
        assert T2_GEOMETRY["pcie"].target_fraction == pytest.approx(0.809, abs=0.001)

    def test_chip_totals(self):
        assert chip_flip_flop_total() > 500_000
        assert chip_gate_total() > 6_000_000

    def test_table1_sizes(self):
        l2c = HIGHLEVEL_STATE_BYTES["l2c"]
        assert l2c["tag_address_array"] == 28 * 1024
        assert l2c["cache_data_array"] == 512 * 1024
        assert HIGHLEVEL_STATE_BYTES["mcu"]["dram_contents"] == 4 * 1024**3
        assert HIGHLEVEL_STATE_BYTES["ccx"] == {}
        assert HIGHLEVEL_STATE_BYTES["pcie"]["rx_transfer_buffer"] == 8 * 1024


class TestPackets:
    def test_pcx_roundtrip(self):
        pkt = PcxPacket(PcxType.STORE, 3, 5, 0x12345678, 0xDEADBEEF, 77)
        assert PcxPacket.unpack_fields(*pkt.pack_fields()) == pkt

    def test_cpx_roundtrip(self):
        pkt = CpxPacket(CpxType.ATOMIC_RET, 1, 2, 0x40, 9, 3)
        assert CpxPacket.unpack_fields(*pkt.pack_fields()) == pkt

    def test_malformed_type_decodes_safely(self):
        pkt = PcxPacket.unpack_fields(7, 0, 0, 0, 0, 0)
        assert pkt.ptype is PcxType.LOAD  # safe default; consumer flags it

    def test_field_truncation(self):
        pkt = PcxPacket(PcxType.LOAD, 0, 0, 1 << 45, 0, 1 << 20)
        fields = pkt.pack_fields()
        assert fields[3] < (1 << 40)
        assert fields[5] < (1 << 16)

    @given(
        st.sampled_from(list(PcxType)),
        st.integers(0, 7),
        st.integers(0, 7),
        st.integers(0, (1 << 40) - 1),
        st.integers(0, (1 << 64) - 1),
        st.integers(0, (1 << 16) - 1),
    )
    def test_pcx_roundtrip_property(self, t, core, thread, addr, data, reqid):
        pkt = PcxPacket(t, core, thread, addr, data, reqid)
        assert PcxPacket.unpack_fields(*pkt.pack_fields()) == pkt


class TestAddressMap:
    def test_line_interleaving(self):
        amap = AddressMap()
        assert amap.bank_of(0x00) == 0
        assert amap.bank_of(0x40) == 1
        assert amap.bank_of(0x1C0) == 7
        assert amap.bank_of(0x200) == 0

    def test_mcu_pairs_banks(self):
        amap = AddressMap(l2_banks=8, mcus=4)
        assert amap.banks_of_mcu(0) == (0, 1)
        assert amap.banks_of_mcu(3) == (6, 7)
        assert amap.mcu_of_bank(5) == 2

    def test_disjoint_ranges_per_bank(self):
        """Each L2C instance serves a disjoint address range (the QRR
        ordering prerequisite)."""
        amap = AddressMap()
        seen = {}
        for line in range(0, 64 * LINE_BYTES, LINE_BYTES):
            bank = amap.bank_of(line)
            assert seen.setdefault(line, bank) == bank

    def test_word_alignment_helpers(self):
        amap = AddressMap()
        assert amap.word_align(0x47) == 0x40
        assert amap.is_word_aligned(0x48)
        assert not amap.is_word_aligned(0x44)

    def test_word_in_line(self):
        amap = AddressMap()
        assert amap.word_in_line(0x40) == 0
        assert amap.word_in_line(0x78) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressMap(l2_banks=6)
        with pytest.raises(ValueError):
            AddressMap(l2_banks=8, mcus=16)

    @given(st.integers(0, (1 << 40) - 1))
    def test_rebuild_addr_roundtrip(self, addr):
        amap = AddressMap(l2_banks=8, l2_sets=64, mcus=4)
        line = amap.line_addr(addr)
        rebuilt = amap.rebuild_addr(
            amap.tag_of(addr), amap.set_of(addr), amap.bank_of(addr)
        )
        assert rebuilt == line

    @given(st.integers(0, (1 << 40) - 1))
    def test_same_line_same_bank(self, addr):
        amap = AddressMap()
        assert amap.bank_of(addr) == amap.bank_of(amap.line_addr(addr))
