"""The serve layer: job identity, admission control, the warm platform
pool, crash-safe job state, and the HTTP transport.

The headline assertion repeats throughout: a campaign served over HTTP
-- deduped, drained, restarted, or recovered -- returns bytes identical
to a clean serial ``repro sweep``.  Chaos scenarios against a real
daemon subprocess (SIGKILL, overload) live in ``test_chaos.py``.
"""

import json
import threading
import time

import pytest

from repro.api import Grid, SerialExecutor, dumps_canonical
from repro.api.result import SCHEMA_VERSION
from repro.resilience import SweepJournal
from repro.resilience.chaos import corrupt_entry, wait_for
from repro.serve import (
    CampaignService,
    ClientBusy,
    Draining,
    PooledSession,
    QueueFull,
    ServeClient,
    ServeError,
    UnknownJob,
    job_id_for,
    make_server,
    normalize_request,
    write_endpoint_file,
)
from repro.system.machine import MachineConfig

CFG = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8)

GRID = Grid(
    components=("l2c", "mcu"),
    benchmarks=("fft",),
    seeds=(2015,),
    mode="injection",
    n=4,
    machine=CFG,
    scale=5e-6,
)

#: The wire form of GRID: what a client POSTs to /jobs.
GRID_REQUEST = {"grid": GRID.to_dict()}


def expected_payload():
    """The canonical document ``repro sweep --json`` writes for GRID."""
    results = SerialExecutor().run(GRID.specs())
    doc = {
        "schema_version": SCHEMA_VERSION,
        "grid": GRID.to_dict(),
        "results": [r.to_dict() for r in results],
    }
    return (dumps_canonical(doc) + "\n").encode("utf-8")


@pytest.fixture(scope="module")
def baseline():
    return expected_payload()


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(
        tmp_path / "state", queue_limit=4, per_client_limit=2
    )
    svc.start()
    yield svc
    svc.close(timeout=30.0)


def _wait_status(service, job_id, status, timeout=60.0):
    assert wait_for(
        lambda: service.job(job_id).status == status, timeout=timeout
    ), (
        f"job {job_id} never reached {status!r} "
        f"(stuck at {service.job(job_id).status!r})"
    )


# ----------------------------------------------------------------------
# request normalization + content-addressed identity
# ----------------------------------------------------------------------
def test_normalize_request_grid_and_specs_forms():
    payload, specs = normalize_request(GRID_REQUEST)
    assert payload == GRID.to_dict()
    assert [s.digest() for s in specs] == [
        s.digest() for s in GRID.specs()
    ]
    one = GRID.specs()[0]
    payload1, specs1 = normalize_request({"spec": one.to_dict()})
    payload2, specs2 = normalize_request({"specs": [one.to_dict()]})
    assert payload1 == payload2 == {"specs": [one.to_dict()]}
    assert specs1[0].digest() == specs2[0].digest() == one.digest()


@pytest.mark.parametrize(
    "bad",
    [
        "not a dict",
        {},
        {"grid": {}, "spec": {}},
        {"grid": "nope"},
        {"specs": "nope"},
        {"specs": [{"benchmark": "no-such-benchmark"}]},
        # a grid that expands to zero cells: pcie needs an input file
        {"grid": {"components": ["pcie"], "benchmarks": ["fft"]}},
    ],
)
def test_normalize_request_rejects_malformed(bad):
    with pytest.raises(ValueError):
        normalize_request(bad)


def test_job_identity_is_content_addressed():
    payload, _ = normalize_request(GRID_REQUEST)
    # identity survives key reordering: canonical JSON, not dict order
    shuffled = dict(reversed(list(payload.items())))
    assert job_id_for(payload) == job_id_for(shuffled)
    other = dict(payload, n=payload["n"] + 1)
    assert job_id_for(payload) != job_id_for(other)


# ----------------------------------------------------------------------
# the warm platform pool
# ----------------------------------------------------------------------
def test_pooled_session_lru_evicts_and_counts():
    session = PooledSession(capacity=2)
    specs = Grid(
        components=("l2c",),
        benchmarks=("fft", "chol", "radi"),
        seeds=(2015,),
        n=1,
        machine=CFG,
        scale=5e-6,
    ).specs()
    a, b, c = specs
    session.platform(a)
    session.platform(b)
    assert session.platform(a) is session.platform(a)  # hit, stable
    session.platform(c)  # evicts b (least recently used)
    stats = session.pool_stats()
    assert stats["platforms"] == 2
    assert stats["evictions"] == 1
    before = stats["misses"]
    session.platform(b)  # rebuilt: it was evicted
    assert session.pool_stats()["misses"] == before + 1


def test_pooled_session_rejects_zero_capacity():
    with pytest.raises(ValueError):
        PooledSession(capacity=0)


# ----------------------------------------------------------------------
# the service core: submit -> run -> canonical bytes
# ----------------------------------------------------------------------
def test_submit_runs_to_done_and_serves_canonical_bytes(
    service, baseline
):
    job, created = service.submit(GRID_REQUEST, client="t")
    assert created and job.status in ("queued", "running")
    assert service.result_payload(job.id) is None  # not done yet
    _wait_status(service, job.id, "done")
    assert service.result_payload(job.id) == baseline
    view = service.job_view(job)
    assert view["landed"] == view["cells"] == len(GRID.specs())
    # a done job's journal is fully landed and durable
    journal = SweepJournal.load(service.store.job_dir(job.id))
    assert journal.unlanded() == []


def test_duplicate_submission_dedupes_to_one_job(service):
    job, created = service.submit(GRID_REQUEST, client="a")
    again, created2 = service.submit(GRID_REQUEST, client="b")
    assert created and not created2
    assert again is job
    assert service.counters["deduped"] == 1
    _wait_status(service, job.id, "done")
    # resubmitting a done job attaches too (poll-safe result re-ask)
    final, created3 = service.submit(GRID_REQUEST, client="c")
    assert final is job and not created3


def test_cancel_queued_job(tmp_path):
    gate = threading.Event()
    service = CampaignService(
        tmp_path / "state",
        queue_limit=4,
        per_client_limit=4,
        before_job=lambda job: gate.wait(timeout=30.0),
    )
    service.start()
    try:
        first, _ = service.submit(GRID_REQUEST, client="t")
        spec = GRID.specs()[0]
        queued, _ = service.submit({"spec": spec.to_dict()}, client="t")
        # the runner is parked inside job 1; job 2 is still queued
        cancelled = service.cancel(queued.id)
        assert cancelled.status == "cancelled"
        gate.set()
        _wait_status(service, first.id, "done")
        assert service.job(queued.id).status == "cancelled"
        with pytest.raises(UnknownJob):
            service.cancel("no-such-job")
        # a cancelled job resubmits through normal admission
        resub, created = service.submit(
            {"spec": spec.to_dict()}, client="t"
        )
        assert resub.id == queued.id and not created
        _wait_status(service, resub.id, "done")
    finally:
        service.close(timeout=30.0)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def _gated_service(tmp_path, **kwargs):
    """A service whose runner parks inside the first job until the
    returned gate is set -- deterministic queue pressure."""
    gate = threading.Event()
    service = CampaignService(
        tmp_path / "state",
        before_job=lambda job: gate.wait(timeout=30.0),
        **kwargs,
    )
    service.start()
    return service, gate


def _spec_request(i):
    spec = GRID.specs()[0]
    return {"spec": dict(spec.to_dict(), n=i + 1)}


def test_admission_queue_full_and_client_busy(tmp_path):
    service, gate = _gated_service(
        tmp_path, queue_limit=2, per_client_limit=2
    )
    try:
        service.submit(_spec_request(0), client="a")  # claimed by runner
        assert wait_for(lambda: len(service._active) == 1, timeout=10.0)
        service.submit(_spec_request(1), client="a")  # queued
        # client 'a' is at its in-flight cap -> 429
        with pytest.raises(ClientBusy) as busy:
            service.submit(_spec_request(2), client="a")
        assert busy.value.status == 429
        assert busy.value.retry_after >= 1
        # another client still has queue budget
        service.submit(_spec_request(3), client="b")
        # now the queue itself is full -> 503 for everyone
        with pytest.raises(QueueFull) as full:
            service.submit(_spec_request(4), client="c")
        assert full.value.status == 503
        assert full.value.retry_after >= 1
        assert service.counters["rejected_busy"] == 1
        assert service.counters["rejected_full"] == 1
        # dedupe bypasses admission: re-asking for a queued job is free
        job, created = service.submit(_spec_request(3), client="c")
        assert not created and job.status in ("queued", "running")
        gate.set()
        assert service.wait_idle(timeout=120.0)
        stats = service.stats()
        assert stats["jobs"] == {"done": 3}
    finally:
        gate.set()
        service.close(timeout=30.0)


def test_draining_service_refuses_submissions(service):
    job, _ = service.submit(GRID_REQUEST, client="t")
    _wait_status(service, job.id, "done")
    service.drain(timeout=30.0)
    with pytest.raises(Draining):
        service.submit(_spec_request(9), client="t")
    # dedupe to a done job still works while draining
    again, created = service.submit(GRID_REQUEST, client="t")
    assert again is job and not created


# ----------------------------------------------------------------------
# crash-safe job state: restart recovery + startup fsck
# ----------------------------------------------------------------------
def test_restart_recovers_interrupted_job_byte_identically(
    tmp_path, baseline
):
    state = tmp_path / "state"
    gate = threading.Event()
    first = CampaignService(state, before_job=lambda job: gate.wait(30.0))
    first.start()
    job, _ = first.submit(GRID_REQUEST, client="t")
    assert wait_for(lambda: first.job(job.id).status == "running", 10.0)
    # simulate a hard daemon death: no drain, no goodbye -- the only
    # survivors are the atomically-written manifests and the bus
    gate.set()

    second = CampaignService(state)
    second.start()
    try:
        assert second.recovered["jobs"] == 1
        recovered = second.job(job.id)
        assert recovered.resumes >= 1
        _wait_status(second, job.id, "done")
        assert second.result_payload(job.id) == baseline
    finally:
        second.close(timeout=30.0)
    first.close(timeout=5.0)


def test_startup_fsck_quarantines_damaged_bus_entries(
    tmp_path, baseline
):
    state = tmp_path / "state"
    first = CampaignService(state)
    first.start()
    job, _ = first.submit(GRID_REQUEST, client="t")
    _wait_status(first, job.id, "done")
    first.close(timeout=30.0)

    bus = state / "bus"
    entries = sorted(bus.glob("*.json"))
    assert entries
    corrupt_entry(entries[0])

    second = CampaignService(state)
    second.start()
    try:
        fsck = second.recovered["fsck"]
        assert fsck is not None and fsck["issues"] == 1
        assert second.counters["fsck_quarantined"] == 1
        assert (bus / "quarantine").is_dir()
        # the done job replays: the quarantined cell recomputes, the
        # rest hit -- and the bytes are still the clean serial run's
        assert second.result_payload(job.id) == baseline
    finally:
        second.close(timeout=30.0)


def test_damaged_job_manifest_is_skipped_not_fatal(tmp_path, baseline):
    state = tmp_path / "state"
    first = CampaignService(state)
    first.start()
    job, _ = first.submit(GRID_REQUEST, client="t")
    _wait_status(first, job.id, "done")
    first.close(timeout=30.0)

    (state / "jobs" / "zz-broken").mkdir(parents=True)
    (state / "jobs" / "zz-broken" / "job.json").write_text("{torn")

    second = CampaignService(state)
    second.start()
    try:
        assert second.recovered["damaged"] == ["zz-broken"]
        assert second.result_payload(job.id) == baseline
    finally:
        second.close(timeout=30.0)


# ----------------------------------------------------------------------
# the HTTP transport + client
# ----------------------------------------------------------------------
@pytest.fixture
def http_service(tmp_path):
    service = CampaignService(
        tmp_path / "state", queue_limit=4, per_client_limit=2
    )
    service.start()
    server = make_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    yield service, url
    server.shutdown()
    server.server_close()
    service.close(timeout=30.0)


def test_http_end_to_end_bytes_and_views(http_service, baseline):
    service, url = http_service
    client = ServeClient(url, client_id="t")
    assert client.healthz()["ok"] is True
    assert client.ready() is True

    view, raw = client.run(GRID_REQUEST, timeout=120.0)
    assert raw == baseline
    assert view["status"] == "done"
    assert view["landed"] == view["cells"]

    jobs = client.jobs()
    assert [j["id"] for j in jobs] == [view["id"]]
    stats = client.stats()
    assert stats["counters"]["jobs_done"] == 1

    # resubmission dedupes over the wire too
    again = client.submit(GRID_REQUEST)
    assert again["id"] == view["id"] and again["created"] is False
    assert client.result_bytes(view["id"]) == baseline


def test_http_error_paths(http_service):
    service, url = http_service
    client = ServeClient(url, client_id="t")
    with pytest.raises(ServeError) as missing:
        client.job("no-such-job")
    assert missing.value.status == 404
    with pytest.raises(ServeError) as bad:
        client.submit({"nope": 1}, retry=False)
    assert bad.value.status == 400
    with pytest.raises(ServeError) as gone:
        client.cancel("no-such-job")
    assert gone.value.status == 404


def test_http_result_409_while_running_then_lands(
    tmp_path, baseline
):
    gate = threading.Event()
    service = CampaignService(
        tmp_path / "state", before_job=lambda job: gate.wait(30.0)
    )
    service.start()
    server = make_server(service, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        client = ServeClient(url, client_id="t")
        view = client.submit(GRID_REQUEST)
        with pytest.raises(ServeError) as pending:
            client.result_bytes(view["id"])  # wait=False: raise the 409
        assert pending.value.status == 409
        assert pending.value.body["status"] in ("queued", "running")
        gate.set()
        assert client.result_bytes(
            view["id"], wait=True, timeout=120.0
        ) == baseline
    finally:
        gate.set()
        server.shutdown()
        server.server_close()
        service.close(timeout=30.0)


def test_http_draining_readyz_and_retry_after(http_service):
    service, url = http_service
    client = ServeClient(url, client_id="t")
    service.drain(timeout=10.0)
    assert client.ready() is False
    status, headers, _raw = client._request(
        "POST", "/jobs", body=_spec_request(0), retry=False
    )
    assert status == 503
    assert int(headers.get("Retry-After", "0")) >= 1


def test_endpoint_file_round_trip(tmp_path):
    write_endpoint_file(tmp_path, "127.0.0.1", 4242)
    doc = json.loads((tmp_path / "http.json").read_text())
    assert doc["url"] == "http://127.0.0.1:4242"
    assert doc["port"] == 4242 and doc["pid"] > 0


# ----------------------------------------------------------------------
# supervision
# ----------------------------------------------------------------------
def test_job_deadline_interrupts_and_fails_the_job(tmp_path):
    service = CampaignService(
        tmp_path / "state",
        job_timeout=0.2,
        before_job=lambda job: time.sleep(1.0),
    )
    service.start()
    try:
        job, _ = service.submit(GRID_REQUEST, client="t")
        _wait_status(service, job.id, "failed", timeout=60.0)
        assert "deadline exceeded" in service.job(job.id).error
    finally:
        service.close(timeout=30.0)


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_supervisor_relaunches_dead_runner(tmp_path):
    boom = {"armed": True}

    def sabotage(job):
        if boom["armed"]:
            boom["armed"] = False
            raise SystemExit("chaos: runner thread killed")

    service = CampaignService(tmp_path / "state", before_job=sabotage)
    # before_job exceptions are swallowed by design; re-raise SystemExit
    # through a wrapper that bypasses the shield to kill the thread
    original = service._run_job

    def lethal(job):
        if boom["armed"]:
            boom["armed"] = False
            raise SystemExit("chaos: runner thread killed")
        return original(job)

    service._run_job = lethal
    service.start()
    try:
        job, _ = service.submit(GRID_REQUEST, client="t")
        # the sabotaged runner dies; the supervisor notices, fails the
        # job, fscks the bus, and spawns a replacement runner
        assert wait_for(
            lambda: service.counters["runner_relaunches"] >= 1,
            timeout=30.0,
        ), "the supervisor never relaunched the dead runner"
        _wait_status(service, job.id, "failed", timeout=30.0)
        assert "runner thread died" in service.job(job.id).error
        # the replacement runner is alive: a resubmission completes
        resub, created = service.submit(GRID_REQUEST, client="t")
        assert resub.id == job.id and not created
        _wait_status(service, job.id, "done", timeout=120.0)
    finally:
        service.close(timeout=30.0)
