"""Differential tests: event-driven engine vs. the reference stepper.

The event engine's whole contract is *bit-identical observables*: for
any spec, every RunResult field, every canonical result byte and every
snapshot must match what the original everything-every-cycle stepper
produces.  These tests enforce that across all three experiment modes
and several workloads/seeds.
"""

import pytest

from repro.api import ExperimentSpec, Session, dumps_canonical
from repro.mixedmode.platform import MixedModePlatform
from repro.system.machine import Machine, MachineConfig
from repro.workloads import build_workload

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)

#: (benchmark, seed, scale) cells for the differential sweep.
GOLDEN_CASES = [
    ("fft", 2015, 1 / 120_000),
    ("flui", 7, 1 / 120_000),
    ("radi", 42, 1 / 120_000),
    ("p-wc", 3, 2e-5),
]


def _machine_pair(benchmark, seed, scale):
    image = build_workload(
        benchmark, threads=CFG.total_threads, scale=scale, seed=seed
    )
    machines = []
    for engine in ("reference", "event"):
        machine = Machine(CFG, engine=engine)
        machine.load_workload(image)
        machines.append(machine)
    return machines


def _result_tuple(res):
    return (res.completed, res.cycles, res.output, res.trap, res.hung, res.retired)


class TestGoldenRuns:
    @pytest.mark.parametrize("bench,seed,scale", GOLDEN_CASES)
    def test_run_identical(self, bench, seed, scale):
        ref, evt = _machine_pair(bench, seed, scale)
        r1, r2 = ref.run(), evt.run()
        assert _result_tuple(r1) == _result_tuple(r2)
        assert ref.snapshot() == evt.snapshot()

    def test_run_cycles_and_until_identical(self):
        ref, evt = _machine_pair("fft", 1, 1 / 120_000)
        ref.run_cycles(137)
        evt.run_cycles(137)
        assert ref.snapshot() == evt.snapshot()
        ref.run_until_cycle(1009)
        evt.run_until_cycle(1009)
        assert ref.cycle == evt.cycle == 1009
        assert ref.snapshot() == evt.snapshot()

    def test_hang_detection_identical(self):
        """The event engine's idle hop must fire the watchdog at the
        exact cycle the reference stepper does."""
        from repro.core.program import ProgramBuilder
        from repro.workloads.base import WorkloadImage

        lock = 0x10000
        b = ProgramBuilder("t")
        b.ldi(1, lock)
        b.spin_lock(1, 2)  # never succeeds: initialized to 1
        b.halt()
        h = ProgramBuilder("h")
        h.halt()
        image = WorkloadImage(
            name="hang",
            programs=[b.build(), h.build()],
            regions=[(0x10000, 0x1000, "globals")],
            init_words={lock: 1},
        )
        results = []
        for engine in ("reference", "event"):
            machine = Machine(CFG, engine=engine)
            machine.load_workload(image)
            results.append(machine.run(max_cycles=500_000))
        assert _result_tuple(results[0]) == _result_tuple(results[1])
        assert results[0].hung


class TestCampaignModes:
    """Full campaign cells must serialize to identical canonical bytes."""

    @pytest.mark.parametrize(
        "mode,component,bench,seed,n",
        [
            ("injection", "l2c", "fft", 2015, 3),
            ("injection", "mcu", "flui", 9, 3),
            ("injection", "ccx", "radi", 5, 2),
            ("qrr", "l2c", "fft", 2015, 2),
            ("qrr", "mcu", "flui", 4, 2),
            ("golden", None, "radi", 11, 1),
        ],
    )
    def test_canonical_bytes_identical(self, mode, component, bench, seed, n):
        spec = ExperimentSpec(
            benchmark=bench,
            component=component,
            mode=mode,
            machine=CFG,
            scale=1 / 120_000,
            seed=seed,
            n=n,
        )
        blobs = [
            dumps_canonical(Session(engine=engine).run(spec).to_dict())
            for engine in ("reference", "event")
        ]
        assert blobs[0] == blobs[1]


class TestGoldenSnapshotChains:
    def test_every_checkpoint_identical(self):
        """Delta-chain snapshots (event) == delta-chain snapshots
        (reference, all-dirty captures) at every checkpoint cycle."""
        plats = {
            engine: MixedModePlatform(
                "fft",
                machine_config=CFG,
                scale=1 / 120_000,
                seed=2015,
                engine=engine,
            )
            for engine in ("reference", "event")
        }
        ref, evt = plats["reference"].golden, plats["event"].golden
        assert list(ref.snapshots) == list(evt.snapshots)
        assert len(ref.snapshots) > 1, "need at least one delta checkpoint"
        for cycle in ref.snapshots:
            assert ref.snapshots[cycle] == evt.snapshots[cycle], cycle
