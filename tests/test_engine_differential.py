"""Differential tests: every cycle engine vs. the reference stepper.

The event and compiled engines' whole contract is *bit-identical
observables*: for any spec, every RunResult field, every canonical
result byte and every snapshot must match what the original
everything-every-cycle stepper produces.  These tests enforce that
across all three engines, all experiment modes, several
workloads/seeds, and a live-fault campaign (which pins the compiled
engine's single-step de-optimization path).
"""

import pytest

from repro.api import ExperimentSpec, Session, dumps_canonical
from repro.mixedmode.platform import MixedModePlatform
from repro.system.machine import ENGINES, Machine, MachineConfig
from repro.workloads import build_workload

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)

#: Engines checked against "reference".
FAST_ENGINES = tuple(e for e in ENGINES if e != "reference")

#: (benchmark, seed, scale) cells for the differential sweep.
GOLDEN_CASES = [
    ("fft", 2015, 1 / 120_000),
    ("flui", 7, 1 / 120_000),
    ("radi", 42, 1 / 120_000),
    ("p-wc", 3, 2e-5),
]


def _machines(benchmark, seed, scale, engines=ENGINES):
    image = build_workload(
        benchmark, threads=CFG.total_threads, scale=scale, seed=seed
    )
    machines = {}
    for engine in engines:
        machine = Machine(CFG, engine=engine)
        machine.load_workload(image)
        machines[engine] = machine
    return machines


def _result_tuple(res):
    return (res.completed, res.cycles, res.output, res.trap, res.hung, res.retired)


class TestGoldenRuns:
    @pytest.mark.parametrize("bench,seed,scale", GOLDEN_CASES)
    def test_run_identical(self, bench, seed, scale):
        machines = _machines(bench, seed, scale)
        results = {e: m.run() for e, m in machines.items()}
        snaps = {e: m.snapshot() for e, m in machines.items()}
        for engine in FAST_ENGINES:
            assert _result_tuple(results[engine]) == _result_tuple(
                results["reference"]
            ), engine
            assert snaps[engine] == snaps["reference"], engine

    def test_run_cycles_and_until_identical(self):
        machines = _machines("fft", 1, 1 / 120_000)
        for m in machines.values():
            m.run_cycles(137)
        ref = machines["reference"].snapshot()
        for engine in FAST_ENGINES:
            assert machines[engine].snapshot() == ref, engine
        for m in machines.values():
            m.run_until_cycle(1009)
        ref = machines["reference"].snapshot()
        for engine in FAST_ENGINES:
            assert machines[engine].cycle == 1009
            assert machines[engine].snapshot() == ref, engine

    def test_hang_detection_identical(self):
        """The fast engines' idle hops must fire the watchdog at the
        exact cycle the reference stepper does."""
        from repro.core.program import ProgramBuilder
        from repro.workloads.base import WorkloadImage

        lock = 0x10000
        b = ProgramBuilder("t")
        b.ldi(1, lock)
        b.spin_lock(1, 2)  # never succeeds: initialized to 1
        b.halt()
        h = ProgramBuilder("h")
        h.halt()
        image = WorkloadImage(
            name="hang",
            programs=[b.build(), h.build()],
            regions=[(0x10000, 0x1000, "globals")],
            init_words={lock: 1},
        )
        results = {}
        for engine in ENGINES:
            machine = Machine(CFG, engine=engine)
            machine.load_workload(image)
            results[engine] = machine.run(max_cycles=500_000)
        assert results["reference"].hung
        for engine in FAST_ENGINES:
            assert _result_tuple(results[engine]) == _result_tuple(
                results["reference"]
            ), engine

    def test_mid_debt_snapshots_identical(self):
        """Snapshots taken at arbitrary cycle boundaries must flush the
        compiled engine's in-flight continuations exactly."""
        machines = _machines("radi", 5, 1 / 120_000)
        for target in (73, 74, 75, 211, 500, 1501):
            for m in machines.values():
                m.run_until_cycle(target)
            ref = machines["reference"].snapshot()
            for engine in FAST_ENGINES:
                assert machines[engine].snapshot() == ref, (engine, target)


class TestCampaignModes:
    """Full campaign cells must serialize to identical canonical bytes."""

    @pytest.mark.parametrize(
        "mode,component,bench,seed,n",
        [
            ("injection", "l2c", "fft", 2015, 3),
            ("injection", "mcu", "flui", 9, 3),
            ("injection", "ccx", "radi", 5, 2),
            ("qrr", "l2c", "fft", 2015, 2),
            ("qrr", "mcu", "flui", 4, 2),
            ("golden", None, "radi", 11, 1),
        ],
    )
    def test_canonical_bytes_identical(self, mode, component, bench, seed, n):
        spec = ExperimentSpec(
            benchmark=bench,
            component=component,
            mode=mode,
            machine=CFG,
            scale=1 / 120_000,
            seed=seed,
            n=n,
        )
        blobs = {
            engine: dumps_canonical(
                Session(engine=engine).run(spec).to_dict()
            )
            for engine in ENGINES
        }
        for engine in FAST_ENGINES:
            assert blobs[engine] == blobs["reference"], engine

    @pytest.mark.parametrize("fault", ["stuck:value=1,hold=400", "flicker:period=40"])
    def test_live_fault_campaign_identical(self, fault):
        """Live faults (held across co-simulation) force the compiled
        engine to de-optimize to single-stepping; the outcome bytes
        must stay identical across all engines."""
        spec = ExperimentSpec(
            benchmark="fft",
            component="l2c",
            mode="injection",
            machine=CFG,
            scale=1 / 120_000,
            seed=2015,
            n=2,
            fault=fault,
        )
        blobs = {
            engine: dumps_canonical(
                Session(engine=engine).run(spec).to_dict()
            )
            for engine in ENGINES
        }
        for engine in FAST_ENGINES:
            assert blobs[engine] == blobs["reference"], engine

    def test_spec_engine_field_is_digest_neutral(self):
        base = ExperimentSpec(machine=CFG, scale=1 / 120_000, n=2)
        for engine in ENGINES:
            spec = base.with_(engine=engine)
            assert spec.digest() == base.digest()
            assert "engine" not in spec.to_dict()
            assert spec == base  # compare=False: results are identical
        with pytest.raises(ValueError, match="ExperimentSpec.engine"):
            ExperimentSpec(machine=CFG, engine="turbo")

    def test_session_honors_spec_engine(self):
        spec = ExperimentSpec(
            machine=CFG, scale=1 / 120_000, n=1, engine="compiled"
        )
        session = Session()
        platform = session.platform(spec)
        assert platform.machine.engine == "compiled"


class TestGoldenSnapshotChains:
    def test_every_checkpoint_identical(self):
        """Delta-chain snapshots must match at every checkpoint cycle
        across all three engines (reference captures all-dirty)."""
        plats = {
            engine: MixedModePlatform(
                "fft",
                machine_config=CFG,
                scale=1 / 120_000,
                seed=2015,
                engine=engine,
            )
            for engine in ENGINES
        }
        ref = plats["reference"].golden
        assert len(ref.snapshots) > 1, "need at least one delta checkpoint"
        for engine in FAST_ENGINES:
            fast = plats[engine].golden
            assert list(ref.snapshots) == list(fast.snapshots), engine
            for cycle in ref.snapshots:
                assert ref.snapshots[cycle] == fast.snapshots[cycle], (
                    engine,
                    cycle,
                )
