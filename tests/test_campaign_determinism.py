"""Cross-process reproducibility of campaign seeding.

Campaign RNGs used to be derived from ``hash(component)``/``hash(short)``,
which vary across interpreter runs under ``PYTHONHASHSEED``
randomization.  These tests pin the fix: identical specs must produce
identical outcome tables in fresh processes regardless of the hash seed
-- the property the parallel executor and the sweep's byte-identical
serial/parallel contract rest on.
"""

import json
import os
import subprocess
import sys

CAMPAIGN_ARGS = [
    "campaign", "--benchmark", "fft", "--component", "l2c",
    "--n", "3", "--cores", "2", "--threads-per-core", "2",
    "--scale", "5e-6", "--seed", "11", "--json", "-",
]


def run_cli_fresh_process(argv, hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestCrossProcessDeterminism:
    def test_campaign_identical_across_hash_seeds(self):
        first = run_cli_fresh_process(CAMPAIGN_ARGS, hashseed="0")
        second = run_cli_fresh_process(CAMPAIGN_ARGS, hashseed="424242")
        assert first == second
        payload = json.loads(first)
        records = payload["records"]
        assert len(records) == 3
        assert all(r["flip_location"] is not None for r in records)

    def test_qrr_identical_across_hash_seeds(self):
        argv = [
            "qrr", "--benchmark", "fft", "--component", "l2c",
            "--n", "2", "--cores", "2", "--threads-per-core", "2",
            "--scale", "5e-6", "--json", "-",
        ]
        assert run_cli_fresh_process(argv, "1") == run_cli_fresh_process(
            argv, "999"
        )
