"""The resilience layer: retry policy, crash-safe sweep journal, cache
fsck, graceful shutdown, per-cell failure attribution, and the ssh
launcher's host-spec edge cases."""

import json
import os
import signal

import pytest

from repro.api import (
    CachingExecutor,
    Grid,
    ParallelExecutor,
    SerialExecutor,
    dumps_canonical,
    make_executor,
    result_cache_path,
    store_cached_result,
)
from repro.api.executor import CellFailure
from repro.api.session import Session
from repro.cli import _grid_dict, main
from repro.cluster import SshLauncher
from repro.cluster.launchers import split_host_port
from repro.obs import ProgressState
from repro.resilience import (
    GracefulShutdown,
    RetryPolicy,
    SweepInterrupted,
    SweepJournal,
    fsck_cache,
)
from repro.resilience.chaos import corrupt_entry, plant_orphan_tmp
from repro.resilience.journal import JOURNAL_VERSION, journal_path
from repro.system.machine import MachineConfig

CFG = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8)

#: Zero-delay retry policy so retry-path tests never sleep.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


def _grid(components=("l2c", "mcu"), benchmarks=("fft",)):
    return Grid(
        components=components,
        benchmarks=benchmarks,
        seeds=(2015,),
        mode="injection",
        n=2,
        machine=CFG,
        scale=5e-6,
    )


def _specs(**kwargs):
    return _grid(**kwargs).specs()


def _blobs(results):
    return [dumps_canonical(r.to_dict()) for r in results]


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_validates_its_knobs():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(cell_timeout=0.0)


def test_retry_policy_attempt_budget():
    policy = RetryPolicy(max_attempts=3)
    assert not policy.exhausted(0)
    assert not policy.exhausted(2)
    assert policy.exhausted(3)
    assert policy.exhausted(4)
    assert RetryPolicy(max_attempts=1).exhausted(1)


def test_backoff_is_deterministic_and_jitter_bounded():
    policy = RetryPolicy(
        backoff_base=0.1, backoff_factor=2.0, backoff_cap=30.0, jitter=0.5
    )
    digest = "a" * 16
    for attempt in range(1, 6):
        delay = policy.backoff(digest, attempt)
        # pure function of (digest, attempt): same inputs, same delay
        assert delay == policy.backoff(digest, attempt)
        base = min(30.0, 0.1 * 2.0 ** (attempt - 1))
        assert base * 0.75 <= delay <= base * 1.25
    # the jitter term actually depends on the digest
    schedules = {
        d: [policy.backoff(d, a) for a in range(1, 4)]
        for d in ("a" * 16, "b" * 16)
    }
    assert schedules["a" * 16] != schedules["b" * 16]


def test_backoff_without_jitter_is_exact_and_capped():
    policy = RetryPolicy(
        backoff_base=1.0, backoff_factor=10.0, backoff_cap=50.0, jitter=0.0
    )
    assert policy.backoff("d", 1) == 1.0
    assert policy.backoff("d", 2) == 10.0
    assert policy.backoff("d", 3) == 50.0  # capped, not 100
    assert RetryPolicy(backoff_base=0.0).backoff("d", 1) == 0.0


def test_over_deadline():
    assert not RetryPolicy().over_deadline(0.0, 1e9)  # no deadline set
    policy = RetryPolicy(cell_timeout=5.0)
    assert not policy.over_deadline(100.0, 104.0)
    assert policy.over_deadline(100.0, 105.1)


# ----------------------------------------------------------------------
# serial retry loop
# ----------------------------------------------------------------------
class _FlakySession:
    """Delegates to a real Session but raises the first ``fails`` times
    each digest is run."""

    def __init__(self, fails=1, only=None):
        self.inner = Session()
        self.fails = fails
        self.only = only  # digest -> only that cell is flaky
        self.seen = {}

    def run(self, spec):
        digest = spec.digest()
        if self.only is None or digest == self.only:
            count = self.seen.get(digest, 0)
            self.seen[digest] = count + 1
            if count < self.fails:
                raise RuntimeError(f"flaky ({count + 1})")
        return self.inner.run(spec)


def test_serial_retry_recovers_byte_identical():
    specs = _specs()
    baseline = _blobs(SerialExecutor().run(specs))
    events = []
    executor = SerialExecutor(
        session=_FlakySession(fails=1), retry=FAST_RETRY
    )
    results = executor.run(specs, on_event=events.append)
    assert _blobs(results) == baseline
    retries = [e for e in events if e["type"] == "cell_retry"]
    assert [e["index"] for e in retries] == list(range(len(specs)))
    for event in retries:
        assert event["attempt"] == 1
        assert "flaky" in event["error"]
    # retried cells get a fresh cell_start per attempt
    starts = [e for e in events if e["type"] == "cell_start"]
    assert len(starts) == 2 * len(specs)


def test_serial_exhaustion_raises_cell_failure():
    specs = _specs(components=("l2c",))
    events = []
    executor = SerialExecutor(
        session=_FlakySession(fails=99), retry=FAST_RETRY
    )
    with pytest.raises(CellFailure) as excinfo:
        executor.run(specs, on_event=events.append)
    failure = excinfo.value
    assert failure.index == 0
    assert failure.digest == specs[0].digest()
    assert failure.attempts == FAST_RETRY.max_attempts
    assert "RuntimeError" in failure.reason
    # the failure names the cell in its message
    assert specs[0].label() in str(failure)
    exhausted = [e for e in events if e["type"] == "cell_exhausted"]
    assert len(exhausted) == 1
    assert exhausted[0]["index"] == 0


def test_serial_without_retry_raises_the_original_exception():
    specs = _specs(components=("l2c",))
    executor = SerialExecutor(session=_FlakySession(fails=99))
    with pytest.raises(RuntimeError):
        executor.run(specs, on_event=lambda e: None)


def test_serial_stop_drains_between_cells():
    import threading

    specs = _specs(components=("l2c", "mcu", "ccx"))
    stop = threading.Event()
    landed = []

    def on_result(index, result):
        landed.append(index)
        stop.set()  # request shutdown after the first cell lands

    with pytest.raises(SweepInterrupted) as excinfo:
        SerialExecutor().run(specs, stop=stop, on_result=on_result)
    assert landed == [0]
    assert excinfo.value.done == 1
    assert excinfo.value.total == len(specs)


def test_graceful_shutdown_signals():
    with GracefulShutdown() as guard:
        assert not guard.stop.is_set()
        os.kill(os.getpid(), signal.SIGINT)
        assert guard.stop.wait(timeout=5.0)
        # a second signal escalates to the ordinary hard stop
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)
        assert guard.signals_seen == 2
    # handlers are restored on exit
    assert signal.getsignal(signal.SIGINT) is not guard._handle


# ----------------------------------------------------------------------
# process pool: failures name the cell, kills are survivable
# ----------------------------------------------------------------------
def _kill_first_cell_start(events, killed):
    """An on_event hook that SIGKILLs the pool worker hosting the first
    cell_start it sees (once)."""

    def on_event(event):
        events.append(event)
        if (
            event.get("type") == "cell_start"
            and not killed
            and event.get("worker")
        ):
            killed.append(event["index"])
            os.kill(event["worker"], signal.SIGKILL)

    return on_event


def test_parallel_worker_kill_without_retry_fails_only_that_cell():
    specs = _specs(components=("l2c", "mcu", "ccx"))
    events, killed = [], []
    executor = ParallelExecutor(workers=1)
    with pytest.raises(CellFailure) as excinfo:
        executor.run(specs, on_event=_kill_first_cell_start(events, killed))
    assert killed, "no cell_start ever reported a worker pid"
    failure = excinfo.value
    assert failure.index == killed[0]
    assert "worker died" in failure.reason
    # every *other* cell still completed in a fresh pool
    done = {e["index"] for e in events if e["type"] == "cell_done"}
    assert done == set(range(len(specs))) - {killed[0]}


def test_parallel_worker_kill_with_retry_completes_byte_identical():
    specs = _specs(components=("l2c", "mcu", "ccx"))
    baseline = _blobs(SerialExecutor().run(specs))
    events, killed = [], []
    executor = ParallelExecutor(workers=2, retry=FAST_RETRY)
    state = ProgressState(total=len(specs))
    hook = _kill_first_cell_start(events, killed)

    def on_event(event):
        hook(event)
        state.handle(event)

    results = executor.run(specs, on_event=on_event)
    assert killed
    assert _blobs(results) == baseline
    retried = [e for e in events if e["type"] == "cell_retry"]
    assert any("worker died" in e["error"] for e in retried)
    report = state.report()
    assert report["done"] == len(specs)
    assert report["malformed_events"] == 0
    assert report["retries"] >= 1


def test_caching_executor_remaps_cell_failure_to_grid_coordinates(tmp_path):
    specs = _specs(components=("l2c", "mcu", "ccx"))
    cache = tmp_path / "cache"
    # land cell 0 so the victim sits at miss-list position 0 but grid
    # position 1: the re-raised failure must speak grid coordinates
    CachingExecutor(cache, SerialExecutor()).run(specs[:1])
    flaky = SerialExecutor(
        session=_FlakySession(fails=99, only=specs[1].digest()),
        retry=RetryPolicy(max_attempts=1),
    )
    with pytest.raises(CellFailure) as excinfo:
        CachingExecutor(cache, flaky).run(specs)
    assert excinfo.value.index == 1
    assert excinfo.value.digest == specs[1].digest()


def test_caching_executor_counts_hits_into_interrupted_done(tmp_path):
    import threading

    specs = _specs(components=("l2c", "mcu", "ccx"))
    cache = tmp_path / "cache"
    CachingExecutor(cache, SerialExecutor()).run(specs[:1])
    stop = threading.Event()
    seen = []

    def on_result(index, result):
        seen.append(index)
        stop.set()

    with pytest.raises(SweepInterrupted) as excinfo:
        CachingExecutor(cache, SerialExecutor()).run(
            specs, stop=stop, on_result=on_result
        )
    # one hit + one freshly-landed miss were done when the stop landed
    assert seen == [1]
    assert excinfo.value.done == 2
    assert excinfo.value.total == len(specs)


def test_make_executor_builds_retry_from_cli_scalars(tmp_path):
    serial = make_executor(max_retries=0)
    assert isinstance(serial, SerialExecutor)
    assert serial.retry.max_attempts == 1
    pool = make_executor(workers=2, max_retries=3, cell_timeout=5.0)
    assert isinstance(pool, ParallelExecutor)
    assert pool.retry.max_attempts == 4
    assert pool.retry.cell_timeout == 5.0
    cached = make_executor(cache_dir=tmp_path / "c", cell_timeout=2.0)
    assert isinstance(cached, CachingExecutor)
    assert cached.inner.retry.cell_timeout == 2.0


# ----------------------------------------------------------------------
# sweep journal
# ----------------------------------------------------------------------
def _make_journal(tmp_path, specs=None, grid=None):
    grid = grid if grid is not None else _grid()
    specs = specs if specs is not None else grid.specs()
    journal = SweepJournal.create(
        tmp_path / "journal", _grid_dict(grid), specs
    )
    return journal, specs


def test_journal_create_load_roundtrip(tmp_path):
    grid = _grid(components=("l2c", "mcu", "ccx"))
    journal, specs = _make_journal(tmp_path, grid=grid)
    assert journal_path(journal.directory).is_file()
    assert journal.bus_path().is_dir()
    assert journal.counts() == {
        "pending": len(specs), "landed": 0, "failed": 0, "exhausted": 0,
    }
    loaded = SweepJournal.load(tmp_path / "journal")
    assert loaded.matches(specs)
    assert loaded.unlanded() == list(range(len(specs)))
    # the recorded grid rebuilds the exact same cells
    rebuilt = loaded.to_grid().specs()
    assert [s.digest() for s in rebuilt] == [s.digest() for s in specs]


def test_journal_folds_executor_events_durably(tmp_path):
    journal, specs = _make_journal(tmp_path)
    d0, d1 = specs[0].digest(), specs[1].digest()
    journal.handle_event({"type": "cell_retry", "digest": d0, "attempt": 1})
    journal.handle_event({"type": "cell_done", "digest": d0})
    journal.handle_event({"type": "cell_error", "digest": d1})
    journal.handle_event({"type": "cache_hit", "digest": "not-ours"})
    journal.handle_event("not even a dict")
    loaded = SweepJournal.load(journal.directory)
    assert loaded.cells[0]["state"] == "landed"
    assert loaded.cells[0]["attempts"] == 1
    assert loaded.cells[1]["state"] == "failed"
    assert loaded.unlanded() == [1]
    journal.handle_event(
        {"type": "cell_exhausted", "digest": d1, "attempt": 3}
    )
    loaded = SweepJournal.load(journal.directory)
    assert loaded.cells[1]["state"] == "exhausted"
    assert loaded.cells[1]["attempts"] == 3
    # every flush was an atomic publish: no staging files survive
    assert not list(journal.directory.glob("*.tmp"))


def test_journal_reconcile_trusts_the_bus(tmp_path):
    journal, specs = _make_journal(tmp_path)
    # a worker landed cell 0 but the coordinator died before flushing
    result = SerialExecutor().run(specs[:1])[0]
    store_cached_result(
        result_cache_path(journal.bus_path(), specs[0]), result
    )
    assert journal.reconcile(specs) == 1
    assert journal.reconcile(specs) == 0  # idempotent
    assert journal.unlanded() == [1]
    assert SweepJournal.load(journal.directory).cells[0]["state"] == "landed"


def test_journal_load_rejects_damage(tmp_path):
    with pytest.raises(FileNotFoundError):
        SweepJournal.load(tmp_path / "missing")
    bad = tmp_path / "bad"
    bad.mkdir()
    journal_path(bad).write_text("{torn")
    with pytest.raises(ValueError):
        SweepJournal.load(bad)
    versioned = tmp_path / "versioned"
    versioned.mkdir()
    journal_path(versioned).write_text(
        json.dumps(
            {
                "journal_version": JOURNAL_VERSION + 1,
                "grid": {},
                "cells": [],
            }
        )
    )
    with pytest.raises(ValueError):
        SweepJournal.load(versioned)


# ----------------------------------------------------------------------
# cache fsck
# ----------------------------------------------------------------------
def _warm_cache(tmp_path):
    specs = _specs(components=("l2c", "mcu", "ccx"))
    cache = tmp_path / "cache"
    CachingExecutor(cache, SerialExecutor()).run(specs)
    return cache, specs


def test_fsck_classifies_every_damage_shape(tmp_path):
    cache, specs = _warm_cache(tmp_path)
    assert fsck_cache(cache).issues == 0
    victim = result_cache_path(cache, specs[0])
    corrupt_entry(victim)
    # a valid result filed under the wrong digest
    mismatched = cache / ("f" * len(specs[1].digest()) + ".json")
    mismatched.write_bytes(result_cache_path(cache, specs[1]).read_bytes())
    old_tmp = plant_orphan_tmp(cache)
    young_tmp = cache / "live-writer.json.1.0.tmp"
    young_tmp.write_text("{")

    report = fsck_cache(cache)
    assert report.ok == len(specs) - 1
    assert report.corrupt == [victim.name]
    assert report.mismatched == [mismatched.name]
    assert report.orphan_tmp == [old_tmp.name]
    assert report.skipped_tmp == 1
    assert report.issues == 3
    assert report.quarantined == []  # scan-only never moves bytes
    assert victim.is_file()

    repaired = fsck_cache(cache, repair=True)
    assert sorted(repaired.quarantined) == sorted(
        [victim.name, mismatched.name, old_tmp.name]
    )
    quarantine = cache / "quarantine"
    assert not victim.exists()
    assert (quarantine / victim.name).is_file()
    assert (quarantine / old_tmp.name).is_file()
    # post-repair the bus is clean (the young tmp is still respected)
    after = fsck_cache(cache)
    assert after.issues == 0
    assert after.ok == len(specs) - 1
    assert after.skipped_tmp == 1


def test_fsck_missing_dir_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        fsck_cache(tmp_path / "never-existed")


def test_cli_cache_fsck(tmp_path, capsys):
    cache, specs = _warm_cache(tmp_path)
    assert main(["cache", "fsck", str(cache)]) == 0
    assert "0 corrupt" in capsys.readouterr().out
    corrupt_entry(result_cache_path(cache, specs[0]))
    assert main(["cache", "fsck", str(cache), "--json", "-"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["issues"] == 1
    assert payload["corrupt"] == [result_cache_path(cache, specs[0]).name]
    assert main(["cache", "fsck", str(cache), "--repair"]) == 1
    assert "quarantine" in capsys.readouterr().out
    assert main(["cache", "fsck", str(cache)]) == 0


# ----------------------------------------------------------------------
# progress folds the resilience events
# ----------------------------------------------------------------------
def test_progress_state_folds_resilience_events():
    state = ProgressState(total=4)
    state.handle({"type": "cell_retry", "index": 1, "attempt": 1})
    state.handle({"type": "cell_timeout", "index": 2, "attempt": 1})
    state.handle({"type": "cell_exhausted", "index": 3, "attempt": 3})
    report = state.report()
    assert report["malformed_events"] == 0
    assert report["retries"] == 1
    assert report["timeouts"] == 1
    assert report["exhausted"] == [3]


# ----------------------------------------------------------------------
# ssh launcher edge cases
# ----------------------------------------------------------------------
def test_split_host_port():
    assert split_host_port("node1") == ("node1", None)
    assert split_host_port("node1:2222") == ("node1", "2222")
    assert split_host_port("alice@node1") == ("alice@node1", None)
    assert split_host_port("alice@node1:22") == ("alice@node1", "22")
    # only an all-digit tail is a port
    assert split_host_port("node1:abc") == ("node1:abc", None)
    assert split_host_port("node1:") == ("node1:", None)


def test_ssh_launcher_user_and_port_become_ssh_argv():
    launcher = SshLauncher(["alice@node1:2222"], python="py3")
    argv = launcher.command(0, ["--cache-dir", "/bus"])
    assert argv[:5] == ["ssh", "-o", "BatchMode=yes", "-p", "2222"]
    assert argv[5] == "alice@node1"
    assert argv[6:] == [
        "py3", "-m", "repro.cli", "worker", "--cache-dir", "/bus",
    ]


def test_ssh_launcher_quotes_interpreter_and_pythonpath():
    import shlex

    launcher = SshLauncher(
        ["node1"],
        python="/opt/my python/bin/python3",
        pythonpath="/srv/re pro/src",
    )
    argv = launcher.command(0, ["--cache-dir", "/bus"])
    remote = argv[argv.index("node1") + 1:]
    assert remote[0] == "env"
    assert remote[1] == shlex.quote("PYTHONPATH=/srv/re pro/src")
    assert remote[2] == shlex.quote("/opt/my python/bin/python3")
    # the quoted argv survives a remote shell split intact
    assert shlex.split(" ".join(remote))[:3] == [
        "env", "PYTHONPATH=/srv/re pro/src", "/opt/my python/bin/python3",
    ]


def test_ssh_launcher_round_robin_with_more_workers_than_hosts():
    launcher = SshLauncher(["h1:22", "h2"], python="py3")
    placements = [launcher.host_for(i) for i in range(5)]
    assert placements == ["h1:22", "h2", "h1:22", "h2", "h1:22"]
    assert launcher.command(4, [])[:6] == [
        "ssh", "-o", "BatchMode=yes", "-p", "22", "h1",
    ]


def test_parse_launcher_env_overrides_with_spaces(monkeypatch):
    import shlex

    from repro.cluster import parse_launcher

    monkeypatch.setenv("REPRO_CLUSTER_PYTHON", "/opt/py 3/bin/python")
    monkeypatch.setenv("REPRO_CLUSTER_PYTHONPATH", "/src with space")
    launcher = parse_launcher("ssh:alice@h1:2200")
    argv = launcher.command(0, [])
    assert "-p" in argv and argv[argv.index("-p") + 1] == "2200"
    assert shlex.quote("PYTHONPATH=/src with space") in argv
    assert shlex.quote("/opt/py 3/bin/python") in argv
