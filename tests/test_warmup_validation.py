"""Tests for the Fig. 5 warm-up and Fig. 7 validation experiments."""

import pytest

from repro.mixedmode.validation import ValidationExperiment, ValidationRates
from repro.mixedmode.warmup import WarmupExperiment
from repro.system.machine import MachineConfig


class TestWarmup:
    @pytest.fixture(scope="class")
    def result(self):
        exp = WarmupExperiment(
            benchmark="fft",
            machine_config=MachineConfig(
                cores=2, threads_per_core=2, l2_banks=8, l2_sets=16
            ),
            scale=1 / 300_000,
        )
        return exp.run(runs=3, horizon=400)

    def test_difference_decays(self, result):
        """The Fig. 5 shape: early difference far above the settled tail."""
        early = result.diff_after(0)
        late = result.diff_after(result.horizon - 1)
        assert late < early

    def test_settles_below_paper_threshold(self, result):
        """Paper: <0.2% microarchitectural difference after warm-up."""
        assert result.diff_after(result.horizon - 1) < 0.002

    def test_series_shape(self, result):
        series = result.series(points=5)
        assert series[0][0] == 0.0
        assert series[-1][0] == float(result.horizon - 1)


class TestValidation:
    @pytest.fixture(scope="class")
    def experiment(self):
        return ValidationExperiment(
            machine_config=MachineConfig(
                cores=2, threads_per_core=2, l2_banks=8, l2_sets=16
            ),
            scale=1 / 400_000,
        )

    def test_rtl_only_arm_runs(self, experiment):
        rates = experiment.run_rtl_only(5)
        assert rates.total == 5

    def test_mixed_arm_runs(self, experiment):
        rates = experiment.run_mixed(5)
        assert rates.total == 5

    def test_rates_structure(self):
        rates = ValidationRates("x")
        rates.add("UT")
        rates.add(None)
        assert rates.rate("UT").rate == pytest.approx(0.5)
        assert rates.rate("Hang").rate == 0.0
