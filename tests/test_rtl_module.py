"""Tests for the RTL module base class (repro.rtl.module)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl.compare import MismatchKind
from repro.rtl.module import RtlModule
from repro.rtl.registers import FlipFlopClass


class ToyModule(RtlModule):
    """A small module exercising every storage kind."""

    def __init__(self):
        super().__init__("toy")
        self.ctrl = self.reg("ctrl", 8, reset_value=0x10)
        self.queue = self.reg_array("queue", 4, 16)
        self.cfg = self.reg("cfg", 4, reset_value=0xA, config=True)
        self.prot = self.reg("prot", 8, ff_class=FlipFlopClass.PROTECTED)
        self.bist = self.reg("bist", 8, ff_class=FlipFlopClass.INACTIVE)
        self.perf = self.reg("perf", 8, functional=False)
        self.mem = self.sram_array("mem", 4, 32)

    def tick(self, inputs):
        return None

    def in_flight(self):
        return 0


class TestInventory:
    def test_flip_flop_count(self):
        m = ToyModule()
        assert m.flip_flop_count() == 8 + 64 + 4 + 8 + 8 + 8

    def test_count_by_class(self):
        counts = ToyModule().flip_flop_count_by_class()
        assert counts[FlipFlopClass.TARGET] == 8 + 64 + 4 + 8
        assert counts[FlipFlopClass.PROTECTED] == 8
        assert counts[FlipFlopClass.INACTIVE] == 8

    def test_target_bits_enumeration(self):
        m = ToyModule()
        bits = m.target_bits()
        assert len(bits) == m.target_flip_flop_count()
        # protected/inactive registers never appear
        names = {name for name, _e, _b in bits}
        assert "prot" not in names and "bist" not in names

    def test_duplicate_name_rejected(self):
        m = ToyModule()
        with pytest.raises(ValueError):
            m.reg("ctrl", 4)
        with pytest.raises(ValueError):
            m.sram_array("queue", 2, 2)

    def test_describe_inventory(self):
        rows = ToyModule().describe_inventory()
        assert ("ctrl", 8, "target") in rows
        assert ("sram:mem", 0, "sram") in rows


class TestFlipping:
    def test_flip_target_bit_reaches_array_entries(self):
        m = ToyModule()
        # bit 8 is the first bit of queue entry 0 (after ctrl's 8 bits)
        name, entry, bit = m.flip_target_bit(8)
        assert name == "queue" and entry == 0 and bit == 0
        assert m.queue.read(0) == 1

    def test_every_target_bit_flippable(self):
        m = ToyModule()
        for i in range(m.target_flip_flop_count()):
            m.flip_target_bit(i)
        # flipping every bit once then once more restores the state
        snap = m.snapshot()
        for i in range(m.target_flip_flop_count()):
            m.flip_target_bit(i)
        m2 = ToyModule()
        for name, reg in m2.registers().items():
            pass  # state comparison below via compare()
        assert m.compare(ToyModule()) == []  # double flip == identity

    def test_flip_bit_by_name(self):
        m = ToyModule()
        m.flip_bit("prot", 0, 2)
        assert m.prot.value == 4

    def test_flip_bit_reaches_every_class(self):
        """flip_bit addresses any flip-flop class, not just TARGET --
        the fault subsystem's classes= filter relies on this."""
        m = ToyModule()
        m.flip_bit("bist", 0, 7)       # INACTIVE
        assert m.bist.value == 0x80
        m.flip_bit("cfg", 0, 0)        # config register
        assert m.cfg.value == 0xB
        m.flip_bit("perf", 0, 1)       # non-functional
        assert m.perf.value == 2
        m.flip_bit("queue", 3, 15)     # array entry addressing
        assert m.queue.read(3) == 0x8000
        # double flip restores every location
        for name, entry, bit in (("bist", 0, 7), ("cfg", 0, 0),
                                 ("perf", 0, 1), ("queue", 3, 15)):
            m.flip_bit(name, entry, bit)
        assert m.compare(ToyModule()) == []

    def test_flip_bit_out_of_range(self):
        m = ToyModule()
        with pytest.raises(IndexError):
            m.flip_bit("ctrl", 0, 8)
        with pytest.raises(IndexError):
            m.flip_bit("queue", 4, 0)
        with pytest.raises(KeyError):
            m.flip_bit("nope", 0, 0)

    def test_flip_sram_bit(self):
        m = ToyModule()
        m.flip_sram_bit("mem", 2, 5)
        assert m.mem.read(2) == 32
        (mismatch,) = m.compare(ToyModule())
        assert mismatch.kind is MismatchKind.SRAM
        m.flip_sram_bit("mem", 2, 5)
        assert m.compare(ToyModule()) == []

    def test_flip_sram_bit_out_of_range(self):
        m = ToyModule()
        with pytest.raises(IndexError):
            m.flip_sram_bit("mem", 4, 0)
        with pytest.raises(IndexError):
            m.flip_sram_bit("mem", 0, 32)

    def test_force_bit(self):
        m = ToyModule()
        assert m.force_bit("ctrl", 0, 0, 1) is True
        assert m.ctrl.value == 0x11
        # re-forcing the same value reports no change (stuck-at re-assert)
        assert m.force_bit("ctrl", 0, 0, 1) is False
        assert m.force_bit("ctrl", 0, 4, 0) is True
        assert m.ctrl.value == 0x01
        assert m.force_bit("queue", 2, 3, 1) is True
        assert m.queue.read(2) == 8


class TestSnapshotCompare:
    def test_snapshot_restore_roundtrip(self):
        m = ToyModule()
        m.ctrl.write(0x42)
        m.queue.write(2, 0xBEEF)
        m.mem.write(1, 123)
        snap = m.snapshot()
        m.ctrl.write(0)
        m.queue.write(2, 0)
        m.mem.write(1, 0)
        m.restore(snap)
        assert m.ctrl.value == 0x42
        assert m.queue.read(2) == 0xBEEF
        assert m.mem.read(1) == 123

    def test_clone_is_deep(self):
        m = ToyModule()
        c = m.clone()
        m.queue.write(0, 5)
        assert c.queue.read(0) == 0

    def test_sram_snapshot_restore_roundtrip(self):
        m = ToyModule()
        for row in range(4):
            m.mem.write(row, row * 0x111)
        snap = m.snapshot()
        assert snap["sram:mem"] == [0, 0x111, 0x222, 0x333]
        for row in range(4):
            m.mem.write(row, 0xDEAD)
        m.restore(snap)
        assert [m.mem.read(r) for r in range(4)] == [0, 0x111, 0x222, 0x333]

    def test_sram_snapshot_is_a_copy(self):
        m = ToyModule()
        snap = m.snapshot()
        m.mem.write(0, 99)
        assert snap["sram:mem"][0] == 0

    def test_sram_restore_rejects_wrong_shape(self):
        m = ToyModule()
        snap = m.snapshot()
        snap["sram:mem"] = [0, 1]  # wrong entry count
        with pytest.raises(ValueError, match="entry count"):
            m.restore(snap)

    def test_clone_is_deep_for_srams(self):
        m = ToyModule()
        c = m.clone()
        m.mem.write(1, 77)
        m.flip_sram_bit("mem", 2, 0)
        assert c.mem.read(1) == 0
        assert c.mem.read(2) == 0
        assert len(m.compare(c)) == 2

    def test_compare_identical(self):
        assert ToyModule().compare(ToyModule()) == []

    def test_compare_detects_ff_mismatch(self):
        a, b = ToyModule(), ToyModule()
        a.queue.write(3, 0xF0)
        mismatches = a.compare(b)
        assert len(mismatches) == 1
        m = mismatches[0]
        assert m.kind is MismatchKind.FLIP_FLOP
        assert (m.name, m.entry, m.xor) == ("queue", 3, 0xF0)
        assert m.bit_count == 4

    def test_compare_detects_sram_mismatch(self):
        a, b = ToyModule(), ToyModule()
        a.mem.write(0, 7)
        mismatches = a.compare(b)
        assert mismatches[0].kind is MismatchKind.SRAM

    def test_nonfunctional_mismatch_benign(self):
        a, b = ToyModule(), ToyModule()
        a.perf.write(9)
        (m,) = a.compare(b)
        assert a.is_mismatch_benign(m)

    def test_sram_mismatch_maps_to_highlevel(self):
        a, b = ToyModule(), ToyModule()
        a.mem.write(0, 1)
        (m,) = a.compare(b)
        assert a.mismatch_maps_to_highlevel(m)


class TestReset:
    def test_reset_preserves_config(self):
        m = ToyModule()
        m.cfg.write(0x5)
        m.ctrl.write(0xFF)
        m.reset_flip_flops(preserve_config=True)
        assert m.cfg.value == 0x5
        assert m.ctrl.value == 0x10  # reset value

    def test_reset_preserves_protected(self):
        m = ToyModule()
        m.prot.write(0x77)
        m.reset_flip_flops(preserve_protected=True)
        assert m.prot.value == 0x77

    def test_full_reset(self):
        m = ToyModule()
        m.cfg.write(0x5)
        m.prot.write(0x77)
        m.reset_flip_flops(preserve_config=False, preserve_protected=False)
        assert m.cfg.value == 0xA
        assert m.prot.value == 0

    def test_reset_keeps_srams(self):
        m = ToyModule()
        m.mem.write(2, 99)
        m.reset_flip_flops()
        assert m.mem.read(2) == 99


class TestFlipProperties:
    @settings(max_examples=50)
    @given(st.integers(0, 8 + 64 + 4 + 8 - 1))
    def test_single_flip_single_mismatch(self, index):
        m = ToyModule()
        m.flip_target_bit(index)
        mismatches = m.compare(ToyModule())
        assert len(mismatches) == 1
        assert mismatches[0].bit_count == 1
