"""Tests for the unified experiment API (repro.api)."""

import json

import pytest

from repro.api import (
    ExperimentResult,
    ExperimentSpec,
    Grid,
    ParallelExecutor,
    RunRecord,
    SerialExecutor,
    Session,
    make_executor,
)
from repro.system.machine import MachineConfig
from repro.workloads import ALL_BENCHMARKS, PCIE_BENCHMARKS

#: small, fast geometry shared by the API tests
SMALL = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8, l2_ways=4)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        benchmark="fft", component="l2c", mode="injection",
        machine=SMALL, scale=5e-6, seed=7, n=3,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestSpec:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            small_spec(mode="fuzz")

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(ValueError, match="benchmark"):
            small_spec(benchmark="nope")

    def test_rejects_unknown_component(self):
        with pytest.raises(ValueError, match="component"):
            small_spec(component="niu")

    def test_rejects_pcie_without_input_file(self):
        assert "fft" not in PCIE_BENCHMARKS
        with pytest.raises(ValueError, match="input file"):
            small_spec(component="pcie")

    def test_rejects_qrr_on_unprotected_component(self):
        with pytest.raises(ValueError, match="QRR"):
            small_spec(mode="qrr", component="ccx")

    def test_golden_normalizes_component(self):
        assert small_spec(mode="golden").component is None

    def test_dict_round_trip(self):
        spec = small_spec()
        clone = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec

    def test_platform_key_shared_across_components(self):
        # l2c/mcu/ccx cells of one benchmark share a platform ...
        assert small_spec().platform_key() == small_spec(
            component="mcu"
        ).platform_key()
        # ... but pcie does not (it DMAs the input file)
        pcie = small_spec(benchmark="blsc", component="pcie")
        assert pcie.platform_key() != small_spec(
            benchmark="blsc"
        ).platform_key()

    def test_with_revalidates(self):
        with pytest.raises(ValueError):
            small_spec().with_(component="pcie")


class TestGrid:
    def test_full_injection_grid_count(self):
        # 3 components x 18 benchmarks + pcie x the input-file subset
        expected = 3 * len(ALL_BENCHMARKS) + len(PCIE_BENCHMARKS)
        assert len(Grid()) == expected

    def test_qrr_grid_drops_unprotected_components(self):
        grid = Grid(mode="qrr", benchmarks=("fft", "radi"))
        specs = grid.specs()
        assert {s.component for s in specs} == {"l2c", "mcu"}
        assert len(specs) == 4

    def test_golden_grid_one_cell_per_benchmark(self):
        grid = Grid(mode="golden", benchmarks=("fft", "radi"), seeds=(1, 2))
        specs = grid.specs()
        assert len(specs) == 4
        assert all(s.component is None for s in specs)

    def test_expansion_order_is_component_major(self):
        grid = Grid(
            components=("l2c", "mcu"), benchmarks=("fft", "radi"), n=1
        )
        labels = [(s.component, s.benchmark) for s in grid.specs()]
        assert labels == [
            ("l2c", "fft"), ("l2c", "radi"), ("mcu", "fft"), ("mcu", "radi"),
        ]

    def test_grid_propagates_spec_fields(self):
        grid = Grid(
            components=("l2c",), benchmarks=("fft",), seeds=(3,),
            n=9, machine=SMALL, scale=5e-6,
        )
        (spec,) = grid.specs()
        assert (spec.seed, spec.n, spec.machine, spec.scale) == (
            3, 9, SMALL, 5e-6
        )


class TestSessionAndResults:
    @pytest.fixture(scope="class")
    def session(self):
        return Session()

    def test_injection_result_schema(self, session):
        result = session.run(small_spec())
        assert result.injections == 3
        counts = result.outcome_counts()
        assert sum(counts.values()) + result.persistent == 3
        assert result.golden_cycles > 0
        for record in result.records:
            assert record.flip_location is not None
            assert record.injection_cycle is not None

    def test_save_load_round_trip_injection(self, session, tmp_path):
        result = session.run(small_spec())
        path = result.save(tmp_path / "cell.json")
        assert ExperimentResult.load(path) == result

    def test_save_load_round_trip_qrr(self, session, tmp_path):
        result = session.run(small_spec(mode="qrr", n=2))
        assert result.recovered == result.injections == 2
        path = result.save(tmp_path / "qrr.json")
        clone = ExperimentResult.load(path)
        assert clone == result
        assert clone.recovered == 2

    def test_save_load_round_trip_golden(self, session, tmp_path):
        result = session.run(small_spec(mode="golden"))
        record = result.records[0]
        assert record.cycles == result.golden_cycles > 0
        assert record.output_crc is not None
        path = result.save(tmp_path / "golden.json")
        assert ExperimentResult.load(path) == result

    def test_outcome_table_matches_raw_campaign(self, session):
        spec = small_spec(n=4)
        table = session.run(spec).outcome_table()
        raw = session.campaign(spec).table
        assert table.counts == raw.counts
        assert table.persistent == raw.persistent
        assert table.total == raw.total

    def test_platform_cache_shared_across_components(self, session):
        assert session.platform(small_spec()) is session.platform(
            small_spec(component="ccx")
        )

    def test_rerun_is_deterministic(self, session):
        spec = small_spec(n=4)
        first = session.run(spec)
        second = Session().run(spec)  # fresh platform, same spec
        assert first == second

    def test_load_rejects_future_schema(self, tmp_path, session):
        result = session.run(small_spec(mode="golden"))
        data = result.to_dict()
        data["schema_version"] = 999
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            ExperimentResult.load(path)


class TestExecutors:
    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ParallelExecutor)

    def test_empty_batch(self):
        assert ParallelExecutor(workers=2).run([]) == []

    def test_serial_parallel_equivalence(self):
        specs = [
            small_spec(),
            small_spec(component="mcu"),
            small_spec(mode="qrr", n=2),
        ]
        serial = SerialExecutor().run(specs)
        parallel = ParallelExecutor(workers=2).run(specs)
        assert [r.to_dict() for r in serial] == [
            r.to_dict() for r in parallel
        ]

    def test_parallel_preserves_spec_order(self):
        specs = [small_spec(seed=s, n=1) for s in (1, 2, 3)]
        results = ParallelExecutor(workers=2).run(specs)
        assert [r.spec.seed for r in results] == [1, 2, 3]


class TestRunRecord:
    def test_is_erroneous(self):
        assert RunRecord(index=0, outcome="OMM").is_erroneous
        assert not RunRecord(index=0, outcome="Vanished").is_erroneous
        assert not RunRecord(index=0).is_erroneous
