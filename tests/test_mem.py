"""Tests for the memory substrate (repro.mem)."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.dram import Dram, WriteTrackingPort, divergent_words
from repro.mem.l2state import L2BankState
from repro.soc.address import AddressMap


class TestDram:
    def test_zero_default(self):
        assert Dram().read_word(0x1000) == 0

    def test_write_read(self):
        d = Dram()
        d.write_word(0x40, 0xDEAD)
        assert d.read_word(0x40) == 0xDEAD

    def test_word_alignment_applied(self):
        d = Dram()
        d.write_word(0x43, 7)
        assert d.read_word(0x40) == 7

    def test_zero_write_keeps_sparse(self):
        d = Dram()
        d.write_word(0x40, 5)
        d.write_word(0x40, 0)
        assert d.footprint_words() == 0

    def test_line_roundtrip(self):
        d = Dram()
        words = tuple(range(1, 9))
        d.write_line(0x80, words)
        assert d.read_line(0x80) == words

    def test_fork_is_independent(self):
        d = Dram()
        d.write_word(0x40, 1)
        f = d.fork()
        d.write_word(0x40, 2)
        f.write_word(0x48, 3)
        assert f.read_word(0x40) == 1
        assert d.read_word(0x48) == 0

    def test_snapshot_restore(self):
        d = Dram()
        d.write_word(0x40, 9)
        snap = d.snapshot()
        d.write_word(0x40, 0)
        d.restore(snap)
        assert d.read_word(0x40) == 9

    @given(st.dictionaries(st.integers(0, 1 << 20).map(lambda a: a & ~7),
                           st.integers(1, (1 << 64) - 1), max_size=50))
    def test_fork_equals_original(self, contents):
        d = Dram()
        for a, v in contents.items():
            d.write_word(a, v)
        f = d.fork()
        for a in contents:
            assert f.read_word(a) == d.read_word(a)


class TestWriteTracking:
    def test_records_written_words(self):
        port = WriteTrackingPort(Dram())
        port.write_word(0x40, 1)
        port.write_line(0x80, range(8))
        assert 0x40 in port.written
        assert {0x80 + 8 * i for i in range(8)} <= port.written

    def test_divergence_detected_at_candidates(self):
        live, golden = Dram(), Dram()
        live.write_word(0x40, 1)
        golden.write_word(0x40, 2)
        live.write_word(0x48, 3)
        golden.write_word(0x48, 3)
        assert divergent_words(live, golden, [0x40, 0x48]) == [0x40]

    def test_no_divergence(self):
        d = Dram()
        d.write_word(0x40, 5)
        assert divergent_words(d, d.fork(), [0x40]) == []


class TestL2BankState:
    def setup_method(self):
        self.amap = AddressMap(l2_banks=8, l2_sets=8, mcus=4)
        self.state = L2BankState(0, self.amap, ways=4)

    def addr(self, set_idx, tag):
        return self.amap.rebuild_addr(tag, set_idx, 0)

    def test_miss_on_empty(self):
        assert self.state.lookup(self.addr(0, 1)) is None

    def test_install_then_hit(self):
        a = self.addr(2, 5)
        loc = self.state.install(a, list(range(8)))
        assert self.state.lookup(a) == loc

    def test_victim_prefers_invalid_way(self):
        a = self.addr(1, 1)
        self.state.install(a, [0] * 8)
        assert self.state.choose_victim(1) != self.state.lookup(a)[1]

    def test_victim_rotates_when_full(self):
        for tag in range(4):
            self.state.install(self.addr(3, tag), [0] * 8)
        v1 = self.state.choose_victim(3)
        v2 = self.state.choose_victim(3)
        assert v1 != v2

    def test_line_addr_reconstruction(self):
        a = self.addr(6, 9)
        s, w = self.state.install(a, [0] * 8)
        assert self.state.line_addr(s, w) == a

    def test_snapshot_restore(self):
        a = self.addr(0, 3)
        self.state.install(a, list(range(8)))
        snap = self.state.snapshot()
        self.state.lines[0][0].valid = False
        self.state.restore(snap)
        assert self.state.lookup(a) is not None

    def test_resident_lines(self):
        self.state.install(self.addr(0, 1), [0] * 8)
        self.state.install(self.addr(4, 2), [0] * 8)
        assert len(self.state.resident_lines()) == 2

    def test_state_bytes_structure(self):
        sizes = self.state.state_bytes()
        assert set(sizes) == {
            "tag_address_array",
            "cache_line_state_bits",
            "cache_data_array",
            "l1_cache_directory",
        }
        assert sizes["cache_data_array"] == 8 * 4 * 64
