"""Tests for the pluggable fault-model subsystem (repro.faults)."""

import json

import pytest

from repro.analysis.tables import fault_model_comparison
from repro.api import (
    CachingExecutor,
    ExperimentResult,
    ExperimentSpec,
    Grid,
    SerialExecutor,
    Session,
)
from repro.faults import (
    FAULT_MODELS,
    FaultEvent,
    IntermittentFlip,
    MultiBitUpset,
    Protection,
    SingleBitFlip,
    SramFault,
    StuckAt,
    TargetFilter,
    candidate_bits,
    candidate_rows,
    fault_table,
    parse_fault,
)
from repro.injection.campaign import CampaignResult
from repro.system.machine import MachineConfig

#: small, fast geometry shared by the fault tests (same as test_api)
SMALL = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8, l2_ways=4)


def small_spec(**overrides) -> ExperimentSpec:
    base = dict(
        benchmark="fft", component="l2c", mode="injection",
        machine=SMALL, scale=5e-6, seed=7, n=4,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


@pytest.fixture(scope="module")
def session():
    return Session()


# ----------------------------------------------------------------------
# spec strings and the model registry
# ----------------------------------------------------------------------
class TestParse:
    def test_none_is_default(self):
        assert parse_fault(None) == SingleBitFlip()

    def test_round_trip_canonical(self):
        model = parse_fault("mbu:k=3")
        assert model.spec_string() == "mbu:k=3"
        assert parse_fault(model.spec_string()) == model

    def test_canonical_sorts_and_drops_defaults(self):
        model = parse_fault("stuck:value=1,hold=200")
        # value=1 is the default and drops out; keys sort
        assert model.spec_string() == "stuck:hold=200"

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            parse_fault("cosmic")

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="no parameter"):
            parse_fault("mbu:rays=9")

    def test_bad_parameter_value(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_fault("mbu:k=banana")

    def test_bad_parameter_syntax(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault("mbu:k")

    def test_model_specific_validation(self):
        with pytest.raises(ValueError, match="value must be 0 or 1"):
            parse_fault("stuck:value=2")
        with pytest.raises(ValueError, match="at least 1"):
            parse_fault("mbu:k=0")
        with pytest.raises(ValueError, match="ecc"):
            parse_fault("sram:ecc=maybe")

    def test_registry_and_table_cover_all_models(self):
        assert set(FAULT_MODELS) == {"seu", "mbu", "stuck", "flicker", "sram"}
        headers, rows = fault_table()
        assert {row[0] for row in rows} == set(FAULT_MODELS)


# ----------------------------------------------------------------------
# fault events
# ----------------------------------------------------------------------
class TestFaultEvent:
    def test_json_round_trip(self):
        event = FaultEvent(
            "mbu", "l2c", instance=3, cycle=1234,
            locations=[("iq_data", 2, 7), ("iq_data", 2, 8)],
            params={"k": 2}, masked=False,
        )
        clone = FaultEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone == event


# ----------------------------------------------------------------------
# target filters and protection
# ----------------------------------------------------------------------
class TestTargets:
    @pytest.fixture(scope="class")
    def module(self):
        from repro.faults import build_module

        return build_module("l2c")

    def test_class_filter(self, module):
        bits = candidate_bits(module, TargetFilter(classes=("target",)))
        assert len(bits) == module.target_flip_flop_count()
        anybits = candidate_bits(module, TargetFilter(classes=("any",)))
        assert len(anybits) == module.flip_flop_count()

    def test_name_glob(self, module):
        bits = candidate_bits(
            module, TargetFilter(name_glob="iq_*")
        )
        assert bits and all(name.startswith("iq_") for name, _e, _b in bits)

    def test_entry_range(self, module):
        rows = candidate_rows(
            module, TargetFilter(kind="sram", name_glob="tag_array",
                                 entry_range=(0, 3))
        )
        assert [r for _n, r in rows] == [0, 1, 2, 3]

    def test_protection_masks_single_bit_in_protected_word(self, module):
        prot = Protection()
        assert prot.masks(module, [("wbb_data", 0, 5)])
        assert prot.masks(module, [("sram:tag_array", 0, 1)])

    def test_protection_defeated_by_double_bit(self, module):
        prot = Protection()
        assert not prot.masks(module, [("sram:tag_array", 0, 1),
                                       ("sram:tag_array", 0, 2)])

    def test_protection_ignores_unprotected(self, module):
        assert not Protection().masks(module, [("iq_data", 0, 1)])


# ----------------------------------------------------------------------
# spec integration: the fault field
# ----------------------------------------------------------------------
class TestSpecFaultField:
    def test_explicit_default_normalizes_to_none(self):
        assert small_spec(fault="seu").fault is None
        assert small_spec(fault="seu") == small_spec()

    def test_canonicalized_in_spec(self):
        spec = small_spec(fault="stuck:value=1,hold=200")
        assert spec.fault == "stuck:hold=200"

    def test_digest_stable_for_default(self):
        assert small_spec().digest() == small_spec(fault="seu").digest()

    def test_digest_changes_with_fault(self):
        digests = {
            small_spec(fault=f).digest()
            for f in (None, "mbu:k=2", "mbu:k=3", "stuck", "sram:k=2")
        }
        assert len(digests) == 5

    def test_dict_round_trip(self):
        spec = small_spec(fault="mbu:k=3")
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        # the default omits the key entirely (old digests stay valid)
        assert "fault" not in small_spec().to_dict()

    def test_validation_errors_name_the_field(self):
        with pytest.raises(ValueError, match="ExperimentSpec.fault"):
            small_spec(fault="cosmic")
        with pytest.raises(ValueError, match="ExperimentSpec.mode"):
            small_spec(mode="fuzz")
        with pytest.raises(ValueError, match="ExperimentSpec.n"):
            small_spec(n=0)
        with pytest.raises(ValueError, match="ExperimentSpec.scale"):
            small_spec(scale=-1.0)
        with pytest.raises(ValueError, match="ExperimentSpec.component"):
            small_spec(component="niu")

    def test_qrr_rejects_fault(self):
        with pytest.raises(ValueError, match="ExperimentSpec.fault"):
            small_spec(mode="qrr", fault="mbu:k=2")

    def test_golden_normalizes_fault(self):
        assert small_spec(mode="golden", fault="mbu:k=2").fault is None

    def test_sram_fault_needs_sram_component(self):
        with pytest.raises(ValueError, match="SRAM"):
            small_spec(component="mcu", fault="sram:k=2")

    def test_empty_target_filter_rejected_at_spec_time(self):
        """An unmatched reg=/sram= glob fails spec validation -- before
        any golden run is paid for."""
        with pytest.raises(ValueError, match="ExperimentSpec.fault"):
            small_spec(fault="mbu:reg=no_such_reg*")
        with pytest.raises(ValueError, match="ExperimentSpec.fault"):
            small_spec(fault="stuck:reg=zzz*")
        with pytest.raises(ValueError, match="ExperimentSpec.fault"):
            small_spec(fault="sram:sram=no_such_array*")
        # a matching glob still passes
        assert small_spec(fault="mbu:reg=iq_*").fault == "mbu:reg=iq_*"

    def test_grid_propagates_invalid_fault_spec_error(self):
        """A malformed --fault must raise, not silently empty the grid."""
        grid = Grid(
            components=("l2c",), benchmarks=("fft",), machine=SMALL,
            scale=5e-6, n=1, fault="mbu:k=0",
        )
        with pytest.raises(ValueError, match="at least 1"):
            grid.specs()

    def test_grid_propagates_and_drops_invalid_cells(self):
        grid = Grid(
            components=("l2c", "mcu"), benchmarks=("fft",), machine=SMALL,
            scale=5e-6, n=2, fault="sram:k=2",
        )
        specs = grid.specs()
        # mcu has no SRAM arrays -> its cell is dropped, like PCIe cells
        # of benchmarks without an input file
        assert [s.component for s in specs] == ["l2c"]
        assert specs[0].fault == "sram"  # canonical: k=2 is the default


# ----------------------------------------------------------------------
# campaign-level behaviour per model (deterministic at fixed seed)
# ----------------------------------------------------------------------
class TestCampaigns:
    def test_default_equals_explicit_default_json(self, session, tmp_path):
        """Acceptance: fault unset and fault='seu' produce byte-identical
        ExperimentResult JSON for the same seed."""
        a = session.run(small_spec())
        b = Session().run(small_spec(fault="seu"))
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        a.save(pa)
        b.save(pb)
        assert pa.read_bytes() == pb.read_bytes()

    def test_records_carry_fault_events(self, session):
        result = session.run(small_spec(fault="mbu:k=2"))
        for record in result.records:
            assert record.fault["model"] == "mbu"
            assert len(record.fault["locations"]) == 2
            name, entry, bit0 = record.fault["locations"][0]
            _, entry1, bit1 = record.fault["locations"][1]
            assert entry1 == entry  # burst stays within one entry

    def test_save_load_round_trip_with_fault(self, session, tmp_path):
        result = session.run(small_spec(fault="flicker:period=20,window=600"))
        path = result.save(tmp_path / "cell.json")
        assert ExperimentResult.load(path) == result

    def test_models_are_deterministic(self, session):
        spec = small_spec(fault="stuck:hold=0")
        assert session.run(spec) == Session().run(spec)

    def test_stuck_forever_never_exits_cosim(self, session):
        """A bit held for the whole co-sim window can neither vanish nor
        hand over, so every run ends persistent at the cap."""
        result = session.run(small_spec(fault="stuck:hold=0"))
        assert result.persistent == result.injections

    def test_stuck_hold_delays_the_exit(self, session):
        raw = session.campaign(small_spec(fault="stuck:hold=400"))
        check = session.platform(small_spec()).cosim.check_interval
        for run in raw.runs:
            assert run.cosim.cosim_cycles >= 400
            assert run.cosim.cosim_cycles % check == 0

    def test_flicker_window_delays_the_exit(self, session):
        raw = session.campaign(small_spec(fault="flicker:period=20,window=600"))
        for run in raw.runs:
            assert run.cosim.cosim_cycles >= 600

    def test_sram_double_bit_corrupts_architected_state(self, session):
        """SRAM rows are never touched by the single-bit campaign; a
        double-bit burst defeats ECC and lands in architected state."""
        result = session.run(small_spec(fault="sram:k=2"))
        counts = result.outcome_counts()
        assert counts["Vanished"] == 0
        assert sum(counts.values()) == result.injections
        for record in result.records:
            assert record.fault["locations"][0][0].startswith("sram:")

    def test_sram_single_bit_is_ecc_masked(self, session):
        result = session.run(small_spec(fault="sram:k=1"))
        assert all(r.fault["masked"] for r in result.records)
        assert result.outcome_counts()["Vanished"] == result.injections

    def test_distinct_outcome_distributions(self, session):
        """The four non-default models are observably different from the
        default and from each other at the record level."""
        faults = (None, "mbu:k=2", "stuck:hold=0", "flicker:period=20,window=600",
                  "sram:k=2")
        results = {f: session.run(small_spec(fault=f)) for f in faults}
        summaries = {
            f: (
                tuple(sorted(r.outcome_counts().items())),
                r.persistent,
                tuple(
                    (rec.fault["model"], len(rec.fault["locations"]),
                     rec.fault["masked"])
                    for rec in r.records
                ),
            )
            for f, r in results.items()
        }
        assert len(set(summaries.values())) == len(faults)
        # and at the outcome-distribution level, the default (all-vanish
        # at this scale), stuck:hold=0 (all persistent) and sram:k=2
        # (no vanish) are pairwise distinct
        dist = lambda f: (
            results[f].outcome_counts()["Vanished"], results[f].persistent
        )
        assert len({dist(None), dist("stuck:hold=0"), dist("sram:k=2")}) == 3

    def test_fault_model_comparison_table(self, session):
        results = [
            session.run(small_spec(fault=f))
            for f in (None, "sram:k=2", "sram:k=1")
        ]
        headers, rows = fault_model_comparison(results)
        assert headers[0] == "Fault model"
        assert [row[0] for row in rows] == ["seu", "sram", "sram:k=1"]
        assert rows[2][-1] == str(results[2].injections)  # all masked

    def test_caching_executor_round_trips_fault_specs(self, tmp_path):
        specs = [small_spec(n=2), small_spec(n=2, fault="mbu:k=2")]
        executor = CachingExecutor(tmp_path, SerialExecutor())
        first = executor.run(specs)
        assert (executor.last_hits, executor.last_misses) == (0, 2)
        again = CachingExecutor(tmp_path, SerialExecutor()).run(specs)
        assert [r.to_dict() for r in again] == [r.to_dict() for r in first]
        assert {p.stem for p in tmp_path.glob("*.json")} == {
            s.digest() for s in specs
        }


# ----------------------------------------------------------------------
# campaign-result serialization (fault metadata survives aggregation)
# ----------------------------------------------------------------------
class TestCampaignResultRoundTrip:
    def test_lossless_round_trip(self, session):
        raw = session.campaign(small_spec(fault="mbu:k=2"))
        clone = CampaignResult.from_dict(
            json.loads(json.dumps(raw.to_dict()))
        )
        assert clone.table == raw.table
        assert clone.runs == raw.runs
        # the flip locations and fault events survive aggregation
        assert [r.flip_location for r in clone.runs] == [
            r.flip_location for r in raw.runs
        ]
        assert [r.fault_event for r in clone.runs] == [
            r.fault_event for r in raw.runs
        ]


# ----------------------------------------------------------------------
# live-fault mechanics (unit level)
# ----------------------------------------------------------------------
class _StubAdapter:
    """Records every location-addressed injection call."""

    def __init__(self):
        self.calls = []

    def flip_at(self, name, entry, bit):
        self.calls.append(("flip", name, entry, bit))
        return (name, entry, bit)

    def force_at(self, name, entry, bit, value):
        self.calls.append(("force", name, entry, bit, value))
        return True


class TestLiveFaults:
    def test_stuck_live_reasserts_until_release(self):
        live = StuckAt(hold=3).live(
            FaultEvent("stuck", "l2c", locations=[("r", 0, 1)]),
            inject_cycle=100,
        )
        adapter = _StubAdapter()
        fired = []
        while live.next_active_cycle() is not None:
            cycle = live.next_active_cycle()
            fired.append(cycle)
            live.fire(adapter, cycle)
        assert fired == [101, 102, 103]
        assert all(c[0] == "force" for c in adapter.calls)

    def test_intermittent_live_follows_duty_cycle(self):
        live = IntermittentFlip(period=10, window=35).live(
            FaultEvent("flicker", "l2c", locations=[("r", 0, 1)]),
            inject_cycle=100,
        )
        adapter = _StubAdapter()
        fired = []
        while live.next_active_cycle() is not None:
            cycle = live.next_active_cycle()
            fired.append(cycle)
            live.fire(adapter, cycle)
        assert fired == [110, 120, 130]
        assert all(c[0] == "flip" for c in adapter.calls)

    def test_masked_events_have_no_live_fault(self):
        event = FaultEvent("stuck", "l2c", locations=[("r", 0, 1)], masked=True)
        assert StuckAt().live(event, 100) is None

    def test_one_shot_models_have_no_live_fault(self):
        event = FaultEvent("mbu", "l2c", locations=[("r", 0, 1)])
        assert MultiBitUpset().live(event, 100) is None
        assert SingleBitFlip().live(event, 100) is None

    def test_masked_apply_is_a_noop(self):
        adapter = _StubAdapter()
        event = FaultEvent(
            "sram", "l2c", locations=[("sram:tag_array", 0, 1)], masked=True
        )
        loc = SramFault(k=1).apply(adapter, event)
        assert loc == ("sram:tag_array", 0, 1)
        assert adapter.calls == []
