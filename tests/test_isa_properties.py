"""Property-based tests: the core's ALU semantics vs a Python oracle.

Generates random straight-line ALU programs, evaluates them with a
direct Python interpretation of the ISA semantics, and checks the core
model retires to exactly the same register file.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cpu import Core, ThreadState
from repro.core.isa import NUM_REGS, WORD_MASK, Op
from repro.core.program import Program, ProgramBuilder
from repro.core.isa import Instr

#: ALU ops under test with their Python oracle semantics.
_ORACLE = {
    Op.ADD: lambda a, b: (a + b) & WORD_MASK,
    Op.SUB: lambda a, b: (a - b) & WORD_MASK,
    Op.MUL: lambda a, b: (a * b) & WORD_MASK,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: (a << (b & 63)) & WORD_MASK,
    Op.SHR: lambda a, b: a >> (b & 63),
    Op.CMPLT: lambda a, b: 1 if a < b else 0,
}

_reg = st.integers(1, NUM_REGS - 3)  # leave r14/r15 conventions alone
_val = st.integers(0, WORD_MASK)


@st.composite
def alu_programs(draw):
    """(instructions, initial register values) pairs."""
    init = {r: draw(_val) for r in range(1, 8)}
    instrs = []
    for _ in range(draw(st.integers(1, 25))):
        op = draw(st.sampled_from(sorted(_ORACLE, key=lambda o: o.value)))
        instrs.append(
            Instr(op, rd=draw(_reg), ra=draw(_reg), rb=draw(_reg))
        )
    return instrs, init


def _oracle_run(instrs, init):
    regs = [0] * NUM_REGS
    for r, v in init.items():
        regs[r] = v
    for instr in instrs:
        result = _ORACLE[instr.op](regs[instr.ra], regs[instr.rb])
        if instr.rd != 0:
            regs[instr.rd] = result
    return regs


def _core_run(instrs, init):
    core = Core(
        0,
        issue_pcx=lambda pkt: True,
        check_addr=lambda addr: True,
        write_output=lambda s, v: None,
        alloc_reqid=lambda: 1,
    )
    program = Program("prop", tuple(instrs) + (Instr(Op.HALT),))
    thread = core.add_thread(program)
    for r, v in init.items():
        thread.write_reg(r, v)
    for cycle in range(len(instrs) + 10):
        core.step(cycle)
        if thread.state is ThreadState.HALTED:
            break
    assert thread.state is ThreadState.HALTED
    return thread.regs


class TestAluOracle:
    @settings(max_examples=150)
    @given(alu_programs())
    def test_core_matches_oracle(self, case):
        instrs, init = case
        assert _core_run(instrs, init) == _oracle_run(instrs, init)

    @settings(max_examples=50)
    @given(alu_programs(), st.integers(0, WORD_MASK))
    def test_r0_never_written(self, case, junk):
        instrs, init = case
        # redirect every destination to r0: the register file is inert
        instrs = [Instr(i.op, rd=0, ra=i.ra, rb=i.rb) for i in instrs]
        regs = _core_run(instrs, init)
        assert regs[0] == 0


class TestBranchOracle:
    @settings(max_examples=60)
    @given(st.integers(0, 2**16), st.integers(0, 2**16),
           st.sampled_from([Op.BEQ, Op.BNE, Op.BLT, Op.BGE]))
    def test_branch_taken_matches_python(self, a, b, op):
        taken = {
            Op.BEQ: a == b,
            Op.BNE: a != b,
            Op.BLT: a < b,
            Op.BGE: a >= b,
        }[op]
        builder = ProgramBuilder("br")
        builder.ldi(1, a)
        builder.ldi(2, b)
        builder.emit(op, ra=1, rb=2, imm=5)  # skip the marker write
        builder.ldi(3, 1)  # marker: fall-through executed
        builder.halt()
        builder.halt()  # target
        regs = _core_run_program(builder.build())
        assert (regs[3] == 0) == taken


def _core_run_program(program):
    core = Core(
        0,
        issue_pcx=lambda pkt: True,
        check_addr=lambda addr: True,
        write_output=lambda s, v: None,
        alloc_reqid=lambda: 1,
    )
    thread = core.add_thread(program)
    for cycle in range(len(program) + 10):
        core.step(cycle)
        if thread.state is ThreadState.HALTED:
            break
    assert thread.state is ThreadState.HALTED
    return thread.regs
