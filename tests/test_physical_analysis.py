"""Tests for the physical cost model, outcome logic, and analysis drivers."""

import pytest

from repro.analysis.figures import CORE_OMM_RATES, fig4_omm_comparison
from repro.analysis.tables import (
    build_rtl_model,
    table1_highlevel_state,
    table3_inventory,
    table4_targets,
    table5_benchmarks,
)
from repro.core.cpu import Trap, TrapKind
from repro.physical import CostModel, compute_table6
from repro.system.outcome import Outcome, RunResult, classify_outcome
from repro.utils.render import render_table


class TestTable6:
    """Every number in Table 6 within +-0.5pp of the paper."""

    def test_component_level_qrr(self):
        t6 = compute_table6()
        assert t6.qrr.parity_area == pytest.approx(0.325, abs=0.005)
        assert t6.qrr.parity_power == pytest.approx(0.348, abs=0.005)
        assert t6.qrr.hardening_area == pytest.approx(0.076, abs=0.005)
        assert t6.qrr.hardening_power == pytest.approx(0.087, abs=0.005)
        assert t6.qrr.controller_area == pytest.approx(0.058, abs=0.005)
        assert t6.qrr.controller_power == pytest.approx(0.039, abs=0.005)
        assert t6.qrr.total_area == pytest.approx(0.459, abs=0.005)
        assert t6.qrr.total_power == pytest.approx(0.474, abs=0.005)

    def test_chip_level_qrr(self):
        t6 = compute_table6()
        assert t6.qrr_chip_area == pytest.approx(0.0332, abs=0.0005)
        assert t6.qrr_chip_power == pytest.approx(0.0609, abs=0.0005)

    def test_hardening_only(self):
        t6 = compute_table6()
        assert t6.hardening_only_area == pytest.approx(0.603, abs=0.005)
        assert t6.hardening_only_power == pytest.approx(0.683, abs=0.005)
        assert t6.hardening_only_chip_area == pytest.approx(0.0434, abs=0.0005)
        assert t6.hardening_only_chip_power == pytest.approx(0.0878, abs=0.0005)

    def test_savings_vs_hardening(self):
        """Paper: QRR is 23% / 31% cheaper than hardening everything."""
        t6 = compute_table6()
        assert t6.area_saving_vs_hardening == pytest.approx(0.23, abs=0.02)
        assert t6.power_saving_vs_hardening == pytest.approx(0.31, abs=0.02)

    def test_custom_cost_model_scales(self):
        cheap = compute_table6(CostModel(parity_area=1.0))
        assert cheap.qrr.parity_area < compute_table6().qrr.parity_area


class TestOutcomeClassification:
    def golden(self):
        return {0: 42}

    def test_trap_is_ut(self):
        res = RunResult(False, 100, {}, trap=Trap(TrapKind.BAD_ADDR, 0, 0, 0))
        assert classify_outcome(res, self.golden(), True) is Outcome.UT

    def test_hang(self):
        res = RunResult(False, 100, {}, hung=True)
        assert classify_outcome(res, self.golden(), True) is Outcome.HANG

    def test_omm_on_output_mismatch(self):
        res = RunResult(True, 100, {0: 41})
        assert classify_outcome(res, self.golden(), True) is Outcome.OMM

    def test_ona_when_touched_but_output_ok(self):
        res = RunResult(True, 100, {0: 42})
        assert classify_outcome(res, self.golden(), True) is Outcome.ONA

    def test_vanished_when_untouched(self):
        res = RunResult(True, 100, {0: 42})
        assert classify_outcome(res, self.golden(), False) is Outcome.VANISHED

    def test_erroneous_property(self):
        assert Outcome.UT.is_erroneous
        assert Outcome.ONA.is_erroneous
        assert not Outcome.VANISHED.is_erroneous


class TestAnalysisTables:
    def test_table1_lists_all_components(self):
        headers, rows = table1_highlevel_state()
        text = render_table(headers, rows)
        assert "Tag" in text or "tag_address_array" in text
        assert "4GB" in text
        assert "(none)" in text  # the crossbar row

    def test_table3_uses_model_counts(self):
        headers, rows = table3_inventory()
        by_name = {r[0]: r for r in rows}
        assert by_name["L2 Cache Controller"][2] == 31_675
        assert by_name["Crossbar Interconnect"][2] == 41_521

    def test_table4_percentages(self):
        headers, rows = table4_targets()
        l2c_row = [r for r in rows if r[0].startswith("L2C")][0]
        assert "58.0%" in l2c_row[1]

    def test_table5_includes_measured_column(self):
        headers, rows = table5_benchmarks({"fft": 12345})
        fft_row = [r for r in rows if "(fft)" in r[1]][0]
        assert fft_row[4] == "12345"
        assert len(rows) == 18

    def test_build_rtl_model_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_rtl_model("niu")


class TestFig4:
    def test_literature_rates_present(self):
        assert set(CORE_OMM_RATES) == {"LEON", "IVM", "Power", "OR"}
        assert all(0 < v < 0.05 for v in CORE_OMM_RATES.values())

    def test_comparison_rows(self):
        rows = fig4_omm_comparison({})
        kinds = {k for _n, _r, k in rows}
        assert kinds == {"core"}
        assert len(rows) == 4
