"""Tests for campaigns, persistence probes and recovery analyses."""

import pytest

from repro.injection.campaign import CampaignResult, InjectionCampaign, OutcomeTable
from repro.injection.persistence import PersistenceProbe
from repro.mixedmode.platform import InjectionRun, CosimResult, MixedModePlatform
from repro.recovery.checkpoint import IncrementalCheckpointModel
from repro.recovery.propagation import PropagationAnalysis
from repro.recovery.rollback import RollbackAnalysis
from repro.system.machine import MachineConfig
from repro.system.outcome import OUTCOME_ORDER, Outcome

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)


def fake_run(outcome=None, persistent=False, prop=None, roll=None):
    return InjectionRun(
        component="l2c",
        instance=0,
        benchmark="fft",
        injection_cycle=100,
        flip_location=("iq_addr", 0, 0),
        warmup=500,
        outcome=outcome,
        persistent=persistent,
        cosim=CosimResult(),
        propagation_latency=prop,
        rollback_distance=roll,
    )


class TestOutcomeTable:
    def test_rates_sum_to_one(self):
        table = OutcomeTable("l2c", "fft")
        table.add(fake_run(Outcome.VANISHED))
        table.add(fake_run(Outcome.UT))
        table.add(fake_run(Outcome.OMM))
        table.add(fake_run(persistent=True))
        total = sum(table.rate(o).rate for o in OUTCOME_ORDER)
        assert total == pytest.approx(1.0)

    def test_persistent_folds_into_vanished(self):
        table = OutcomeTable("l2c", "fft")
        table.add(fake_run(persistent=True))
        table.add(fake_run(Outcome.VANISHED))
        assert table.rate(Outcome.VANISHED).rate == 1.0
        assert table.persistent == 1

    def test_erroneous_counts_non_vanished(self):
        table = OutcomeTable("l2c", "fft")
        for o in (Outcome.UT, Outcome.HANG, Outcome.OMM, Outcome.ONA,
                  Outcome.VANISHED):
            table.add(fake_run(o))
        assert table.erroneous.rate == pytest.approx(0.8)

    def test_empty_cell_raises(self):
        with pytest.raises(ValueError):
            OutcomeTable("l2c", "fft").erroneous

    def test_row_format(self):
        table = OutcomeTable("l2c", "fft")
        table.add(fake_run(Outcome.VANISHED))
        row = table.row()
        assert row[0] == "fft"
        assert row[-1] == "100.00%"


class TestCampaignResult:
    def test_sample_collection(self):
        table = OutcomeTable("l2c", "fft")
        result = CampaignResult(table)
        result.runs.append(fake_run(Outcome.OMM, prop=120, roll=4000))
        result.runs.append(fake_run(Outcome.VANISHED))
        assert result.propagation_latencies() == [120]
        assert result.rollback_distances() == [4000]


@pytest.fixture(scope="module")
def platform():
    return MixedModePlatform("flui", machine_config=CFG, scale=1 / 120_000)


class TestLiveCampaign:
    def test_small_campaign_runs(self, platform):
        campaign = InjectionCampaign(platform, "l2c", seed=1)
        result = campaign.run(10)
        assert result.table.total == 10
        assert len(result.runs) == 10
        # the overwhelming majority of flips vanish (paper: >97%)
        assert result.table.rate(Outcome.VANISHED).rate >= 0.5

    def test_persistence_probe_bounded(self, platform):
        probe = PersistenceProbe(platform, "l2c")
        result = probe.run(6, cap=2_000, seed=2)
        assert len(result.samples) == 6
        assert all(0 <= s <= 2_000 for s in result.samples)
        series = result.decade_series(max_exponent=4)
        fractions = [f for _x, f in series]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))


class TestRecoveryAnalyses:
    def test_propagation_cdf(self):
        table = OutcomeTable("l2c", "fft")
        result = CampaignResult(table)
        for lat in (10, 100, 1000, 100000):
            result.runs.append(fake_run(Outcome.OMM, prop=lat))
        analysis = PropagationAnalysis.from_campaigns("l2c", [result])
        assert analysis.mean == pytest.approx((10 + 100 + 1000 + 100000) / 4)
        series = analysis.decade_series(max_exponent=5)
        assert series[-1][1] == pytest.approx(1.0)
        assert analysis.fraction_beyond(1000) == pytest.approx(0.25)

    def test_propagation_empty_raises(self):
        with pytest.raises(ValueError):
            PropagationAnalysis("l2c").mean

    def test_rollback_coverage_quantile(self):
        table = OutcomeTable("l2c", "fft")
        result = CampaignResult(table)
        for dist in range(100, 1100, 100):
            result.runs.append(fake_run(Outcome.OMM, roll=dist))
        analysis = RollbackAnalysis.from_campaigns("l2c", [result])
        assert analysis.distance_for_coverage(0.99) >= 900


class TestCheckpointModel:
    def test_stats(self):
        model = IncrementalCheckpointModel(interval=100)
        model.record_store(0x40, 50)
        model.record_store(0x48, 60)
        model.record_store(0x40, 250)
        stats = model.stats()
        assert stats.checkpoints == 2
        assert stats.max_words_per_checkpoint == 2

    def test_rollback_distance_for_logged_word(self):
        model = IncrementalCheckpointModel(interval=100)
        model.record_store(0x40, 150)  # logged in checkpoint window 1
        # corruption at cycle 950: last store's checkpoint starts at 100
        assert model.rollback_for_corruption(0x40, 950) == 850

    def test_unlogged_word_rolls_to_start(self):
        model = IncrementalCheckpointModel(interval=100)
        assert model.rollback_for_corruption(0x40, 500) == 500

    def test_from_events(self):
        model = IncrementalCheckpointModel.from_events(
            [(10, 0x40), (110, 0x48)], interval=100
        )
        assert model.stats().checkpoints == 2

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            IncrementalCheckpointModel(0)
