"""Tests for campaign statistics (repro.utils.stats)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import (
    BinomialEstimate,
    normal_ci_halfwidth,
    required_samples,
    wilson_interval,
)


class TestRequiredSamples:
    def test_paper_footnote2_sizing(self):
        """Observing a 1% rate to +-0.1% at 95% needs >40,000 samples."""
        n = required_samples(0.01, 0.001)
        assert n > 38_000
        assert n < 40_000  # exact: ~38,032; the paper rounds up

    def test_tighter_interval_needs_more_samples(self):
        assert required_samples(0.01, 0.0005) > required_samples(0.01, 0.001)

    def test_rare_events_need_fewer_samples_at_fixed_halfwidth(self):
        assert required_samples(0.001, 0.001) < required_samples(0.01, 0.001)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            required_samples(0.01, 0.0)
        with pytest.raises(ValueError):
            required_samples(1.5, 0.001)

    def test_halfwidth_achieved_by_required_samples(self):
        rate, hw = 0.02, 0.002
        n = required_samples(rate, hw)
        assert normal_ci_halfwidth(rate, n) <= hw + 1e-12


class TestNormalHalfwidth:
    def test_shrinks_with_sqrt_n(self):
        a = normal_ci_halfwidth(0.01, 1000)
        b = normal_ci_halfwidth(0.01, 4000)
        assert b == pytest.approx(a / 2, rel=1e-9)

    def test_zero_rate_is_degenerate(self):
        assert normal_ci_halfwidth(0.0, 100) == 0.0

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            normal_ci_halfwidth(0.01, 0)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(5, 100)
        assert low < 0.05 < high

    def test_zero_successes_still_informative(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert 0.0 < high < 0.01

    def test_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low > 0.9

    @given(st.integers(1, 10_000), st.data())
    def test_interval_always_within_unit_range(self, n, data):
        k = data.draw(st.integers(0, n))
        low, high = wilson_interval(k, n)
        assert 0.0 <= low <= high <= 1.0

    @given(st.integers(1, 2_000), st.data())
    def test_interval_brackets_rate(self, n, data):
        k = data.draw(st.integers(0, n))
        low, high = wilson_interval(k, n)
        assert low <= k / n <= high

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(10, 5)


class TestBinomialEstimate:
    def test_rate(self):
        est = BinomialEstimate(3, 300)
        assert est.rate == pytest.approx(0.01)

    def test_str_contains_interval(self):
        text = str(BinomialEstimate(1, 100))
        assert "[" in text and "n=100" in text

    def test_ci_halfwidth_matches_formula(self):
        est = BinomialEstimate(10, 1000)
        expected = 1.959963984540054 * math.sqrt(0.01 * 0.99 / 1000)
        assert est.ci95_halfwidth == pytest.approx(expected)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            BinomialEstimate(5, 0)
        with pytest.raises(ValueError):
            BinomialEstimate(6, 5)
