"""Tests for Quick Replay Recovery (repro.qrr)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.dram import Dram
from repro.mixedmode.platform import MixedModePlatform
from repro.qrr.campaign import QrrCampaign
from repro.qrr.coverage import (
    classify_coverage,
    improvement_factor,
    is_parity_covered,
    residual_error_fraction,
)
from repro.qrr.record import RecordTable
from repro.qrr.servers import QrrL2cServer, QrrMcuServer
from repro.soc.address import AddressMap
from repro.soc.packets import CpxPacket, CpxType, PcxPacket, PcxType
from repro.system.machine import MachineConfig
from repro.uncore.l2c import L2cRtl
from repro.uncore.mcu import McuRtl

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)
AMAP = AddressMap(l2_banks=8, l2_sets=16, mcus=4)


class TestCoverage:
    def test_l2c_classification(self):
        cov = classify_coverage(
            L2cRtl(0, AMAP, 8, send_mcu=lambda r: None), "l2c"
        )
        assert cov.hardened_timing == 1_650
        assert cov.hardened_config == 55
        assert cov.qrr_controller == 812
        assert cov.parity_covered == 18_369 - 1_650 - 55

    def test_mcu_classification(self):
        cov = classify_coverage(McuRtl(0, Dram()), "mcu")
        assert cov.hardened_timing == 36
        assert cov.hardened_config == 309

    def test_improvement_exceeds_100x(self):
        for module, comp in (
            (L2cRtl(0, AMAP, 8, send_mcu=lambda r: None), "l2c"),
            (McuRtl(0, Dram()), "mcu"),
        ):
            cov = classify_coverage(module, comp)
            assert improvement_factor(cov) > 100

    def test_residual_matches_footnote15_arithmetic(self):
        """~13% hardened at 1/1000 -> ~0.013% residual."""
        cov = classify_coverage(
            L2cRtl(0, AMAP, 8, send_mcu=lambda r: None), "l2c"
        )
        assert residual_error_fraction(cov) == pytest.approx(0.00013, rel=0.02)

    def test_is_parity_covered(self):
        m = L2cRtl(0, AMAP, 8, send_mcu=lambda r: None)
        assert is_parity_covered(m, "iq_addr")
        assert not is_parity_covered(m, "cfg_mode")  # config: hardened
        assert not is_parity_covered(m, "tag_cmp_stage")  # timing: hardened
        assert not is_parity_covered(m, "ecc_fill_stage")  # ECC already


class TestRecordTable:
    def pkt(self, reqid, ptype=PcxType.LOAD):
        return PcxPacket(ptype, 0, 0, 0x200, 0, reqid)

    def reply(self, reqid, ctype=CpxType.LOAD_RET):
        return CpxPacket(ctype, 0, 0, 0x200, 0, reqid)

    def test_load_lifecycle(self):
        table = RecordTable()
        table.record(self.pkt(1))
        assert len(table) == 1
        table.mark_executed(1, self.reply(1))
        assert len(table) == 1  # reply not yet delivered
        table.mark_delivered(self.reply(1))
        assert len(table) == 0

    def test_store_miss_lifecycle(self):
        """Ack delivered early; entry survives until execution."""
        table = RecordTable()
        table.record(self.pkt(2, PcxType.STORE))
        table.mark_delivered(self.reply(2, CpxType.STORE_ACK))
        assert len(table) == 1  # post-return processing pending
        table.mark_executed(2, None)
        assert len(table) == 0

    def test_store_hit_lifecycle(self):
        table = RecordTable()
        table.record(self.pkt(3, PcxType.STORE))
        table.mark_executed(3, self.reply(3, CpxType.STORE_ACK))
        table.mark_delivered(self.reply(3, CpxType.STORE_ACK))
        assert len(table) == 0

    def test_total_order_maintained(self):
        table = RecordTable()
        for reqid in (5, 3, 9):
            table.record(self.pkt(reqid))
        assert [e.pkt.reqid for e in table.incomplete_in_order()] == [5, 3, 9]

    def test_capacity_backpressure(self):
        table = RecordTable(capacity=2)
        table.record(self.pkt(1))
        table.record(self.pkt(2))
        assert table.full
        with pytest.raises(RuntimeError):
            table.record(self.pkt(3))

    def test_unknown_completion_ignored(self):
        table = RecordTable()
        table.mark_delivered(self.reply(42))
        table.mark_executed(42, None)
        assert len(table) == 0


@pytest.fixture(scope="module")
def platform():
    return MixedModePlatform("flui", machine_config=CFG, scale=1 / 120_000)


class TestQrrRecovery:
    def test_l2c_recovers_all_covered_injections(self, platform):
        campaign = QrrCampaign(platform, "l2c")
        result = campaign.run(12, seed=7)
        assert result.detected == result.injections
        assert result.recovered == result.injections, result.failures

    def test_mcu_recovers_all_covered_injections(self, platform):
        campaign = QrrCampaign(platform, "mcu")
        result = campaign.run(12, seed=7)
        assert result.recovered == result.injections, result.failures

    def test_recovery_blocks_new_packets(self, platform):
        machine = platform.machine
        machine.restore(platform.golden.snapshots[0])
        server = QrrL2cServer(machine, 0)
        server._begin_recovery(0)
        server._replay.append(PcxPacket(PcxType.LOAD, 0, 0, 0, 0, 1))
        server.recovering = True
        assert not server.accept(PcxPacket(PcxType.LOAD, 0, 0, 0x40, 0, 2), 0)

    def test_invalid_component_rejected(self, platform):
        with pytest.raises(ValueError):
            QrrCampaign(platform, "ccx")

    def test_covered_bits_exclude_hardened(self, platform):
        campaign = QrrCampaign(platform, "l2c")
        server = QrrL2cServer(platform.machine, 0)
        covered = campaign._covered_bits(server)
        bits = server.rtl.target_bits()
        names = {bits[i][0] for i in covered}
        assert "cfg_mode" not in names
        assert "tag_cmp_stage" not in names
        assert "iq_addr" in names


class TestReplayEquivalence:
    """Property: gate -> reset -> replay at an arbitrary point produces
    the same architected memory state as an uninterrupted execution
    (paper Sec. 6.3)."""

    def _run_requests(self, pkts, reset_after=None, max_cycles=30_000):
        from repro.uncore.highlevel.mcu import HighLevelMcu

        dram = Dram()
        for i in range(2048):
            dram.write_word(i * 8, random.Random(i).getrandbits(48))
        mcu_inbox, replies = [], []

        class FakeMachine:
            amap = AMAP
            config = CFG

            def _send_mcu(self, req):
                mcu_inbox.append(req)

        fake = FakeMachine()
        fake.dram = dram
        from repro.mem.l2state import L2BankState

        fake.l2states = [L2BankState(0, AMAP, CFG.l2_ways)]
        fake.l2banks = [None]
        server = QrrL2cServer(fake, 0)
        mcu = HighLevelMcu(0, dram, send_reply=replies.append)
        pending = list(pkts)
        delivered = []
        accepted = 0
        reset_done = reset_after is None
        for cycle in range(max_cycles):
            if pending and server.accept(pending[0], cycle):
                pending.pop(0)
                accepted += 1
                if not reset_done and accepted == reset_after:
                    server._begin_recovery(cycle)
                    reset_done = True
            for req in mcu_inbox:
                mcu.accept(req, cycle)
            mcu_inbox.clear()
            delivered.extend(server.tick(cycle))
            mcu.tick(cycle)
            for rep in replies:
                server.deliver_mcu_reply(rep)
            replies.clear()
            if (not pending and server.in_flight() == 0
                    and mcu.in_flight() == 0 and not mcu_inbox
                    and not server.recovering):
                break
        assert server.in_flight() == 0
        state = fake.l2states[0]
        server.rtl.extract_state(state)
        view = {}
        for a in sorted(dram.words):
            if AMAP.bank_of(a) == 0:
                loc = state.lookup(a)
                if loc:
                    view[a] = state.lines[loc[0]][loc[1]].data[AMAP.word_in_line(a)]
                    continue
            view[a] = dram.read_word(a)
        return view, delivered

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 20))
    def test_reset_replay_equivalence(self, seed, reset_after):
        r = random.Random(seed)
        pkts = []
        for i in range(25):
            addr = (r.randrange(32) * 512) + (r.randrange(8) * 8)
            ptype = r.choice(
                [PcxType.LOAD, PcxType.STORE, PcxType.ATOMIC_ADD, PcxType.ATOMIC_TAS]
            )
            pkts.append(PcxPacket(ptype, r.randrange(4), 0, addr,
                                  r.getrandbits(16), i + 1))
        clean_view, clean_out = self._run_requests(pkts)
        replay_view, replay_out = self._run_requests(pkts, reset_after=reset_after)
        assert clean_view == replay_view
        # every request must be answered exactly once in both runs
        def non_inv(out):
            return sorted(
                (p.reqid, p.ctype, p.data) for p in out
                if p.ctype is not CpxType.INVALIDATE
            )
        assert non_inv(clean_out) == non_inv(replay_out)
