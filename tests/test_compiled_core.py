"""Unit tests for the basic-block superinstruction compiler.

The differential suite proves whole-machine bit-identity; these tests
pin the compiler's building blocks directly: block-boundary metadata,
superinstruction semantics against the threaded-code interpreter,
continuation slot accounting, mid-debt flushes, and the live-fault
de-optimization hold.
"""

import random

import pytest

from repro.core.blocks import CONTINUATION_CAP, compile_blocks
from repro.core.cpu import Core, ThreadState
from repro.core.isa import CONTROL_OPS, NUM_REGS, PURE_OPS, WORD_MASK, Op
from repro.core.program import ProgramBuilder, block_spans


def _pure_alu_program(seed: int, length: int = 40):
    """A random straight-line pure program ending in HALT."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"alu{seed}")
    ops = sorted(PURE_OPS, key=lambda op: op.value)
    for _ in range(length):
        op = rng.choice(ops)
        rd = rng.randrange(NUM_REGS)
        ra = rng.randrange(NUM_REGS)
        rb = rng.randrange(NUM_REGS)
        imm = rng.randrange(-(1 << 16), 1 << 16)
        b.emit(op, rd=rd, ra=ra, rb=rb, imm=imm)
    b.halt()
    return b.build()


def _fresh_cores(program, threads=1):
    """(reference core, compiled core) with identical initial state."""
    cores = []
    for compiled in (False, True):
        core = Core(0, l1_words=64, compiled=compiled)
        for t in range(threads):
            thread = core.add_thread(program)
            for r in range(1, NUM_REGS):
                thread.regs[r] = (0x9E3779B97F4A7C15 * (t + r)) & WORD_MASK
        cores.append(core)
    return cores


class TestBlockSpans:
    def test_pure_run_with_trailing_branch(self):
        b = ProgramBuilder("p")
        loop = b.label("loop")
        b.place(loop)
        b.addi(1, 1, 1)  # 0
        b.xor(2, 1, 3)   # 1
        b.blt(1, 4, loop)  # 2
        b.st(1, 5, 0)    # 3 (impure: ends any unit)
        b.jmp(loop)      # 4 (lone branch is its own unit)
        prog = b.build()
        assert block_spans(prog) == [(0, 3, True), (4, 5, True)]

    def test_impure_ops_never_join_units(self):
        b = ProgramBuilder("q")
        b.ldi(1, 7)
        b.div(2, 1, 1)   # can trap: excluded
        b.out(1, 2)      # output channel: excluded
        b.assert_eq(1, 1)  # can trap: excluded
        b.halt()
        prog = b.build()
        spans = block_spans(prog)
        assert spans == [(0, 1, False)]
        for op in (Op.DIV, Op.OUT, Op.ASSERT_EQ, Op.HALT):
            assert op not in PURE_OPS and op not in CONTROL_OPS

    def test_tables_cached_by_content(self):
        b1 = ProgramBuilder("a")
        b1.addi(1, 1, 1)
        b1.addi(2, 2, 2)
        b1.halt()
        b2 = ProgramBuilder("b")
        b2.addi(1, 1, 1)
        b2.addi(2, 2, 2)
        b2.halt()
        assert compile_blocks(b1.build())[1] is compile_blocks(b2.build())[1]


class TestSuperinstructionSemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_pure_blocks_match_interpreter(self, seed):
        """Fused execution must be bit-exact with the handlers for
        random pure instruction soup (masking, r0 discards, shifts)."""
        program = _pure_alu_program(seed)
        ref, comp = _fresh_cores(program)
        for cycle in range(len(program) + 4):
            ref.step(cycle)
            comp.step(cycle)
        assert ref.snapshot() == comp.snapshot()

    def test_branchy_loops_match_interpreter(self):
        b = ProgramBuilder("loop")
        b.ldi(1, 0)
        b.ldi(2, 57)
        loop = b.label("loop")
        b.place(loop)
        b.addi(1, 1, 3)
        b.muli(3, 1, 7)
        b.xori(3, 3, 0x55)
        b.bne(1, 2, "skip")
        b.addi(4, 4, 1)
        b.place("skip")
        b.cmplt(5, 1, 2)
        b.bne(5, 0, loop)
        b.halt()
        program = b.build()
        ref, comp = _fresh_cores(program)
        for cycle in range(4000):
            ref.step(cycle)
            comp.step(cycle)
            if ref.all_halted():
                break
        assert ref.all_halted() and comp.all_halted()
        assert ref.snapshot() == comp.snapshot()

    def test_multi_thread_round_robin_identical(self):
        program = _pure_alu_program(99, length=30)
        ref, comp = _fresh_cores(program, threads=3)
        for cycle in range(120):
            ref.step(cycle)
            comp.step(cycle)
        assert ref.snapshot() == comp.snapshot()


class TestContinuationAccounting:
    def test_every_slot_retires_once(self):
        """The machine-visible slot/retire stream must match the
        interpreter cycle for cycle, not just at the end."""
        program = _pure_alu_program(3, length=25)
        ref, comp = _fresh_cores(program)
        for cycle in range(40):
            assert ref.step(cycle) == comp.step(cycle), cycle

    def test_mid_debt_flush_is_exact(self):
        """Snapshot (which flushes) after every single cycle."""
        program = _pure_alu_program(11, length=30)
        ref, comp = _fresh_cores(program)
        for cycle in range(45):
            ref.step(cycle)
            comp.step(cycle)
            assert ref.snapshot() == comp.snapshot(), cycle

    def test_continuation_cap_bounds_debt(self):
        b = ProgramBuilder("spin")
        loop = b.label("loop")
        b.place(loop)
        b.addi(1, 1, 1)
        b.jmp(loop)  # infinite pure loop
        program = b.build()
        _, comp = _fresh_cores(program)
        comp.step(0)
        thread = comp.threads[0]
        assert 0 < thread.owed_total <= CONTINUATION_CAP + 1

    def test_compiled_hold_single_steps(self):
        program = _pure_alu_program(5, length=20)
        ref, comp = _fresh_cores(program)
        comp._compiled_hold = True
        for cycle in range(30):
            ref.step(cycle)
            comp.step(cycle)
            assert comp.threads[0].owed == 0
        assert ref.snapshot() == comp.snapshot()

    def test_restore_clears_debt(self):
        program = _pure_alu_program(7, length=30)
        ref, comp = _fresh_cores(program)
        ref.step(0)
        comp.step(0)
        snap = ref.snapshot()
        comp.restore(snap)
        assert comp.threads[0].owed == 0
        assert comp.snapshot() == snap
        # resume after restore stays identical
        for cycle in range(1, 30):
            ref.step(cycle)
            comp.step(cycle)
        assert ref.snapshot() == comp.snapshot()


class TestTrapBoundaries:
    def test_negative_branch_target_traps_like_interpreter(self):
        """A wild negative branch target must stop the continuation
        chain (no Python negative-index wraparound into the tables) and
        trap BAD_PC at the exact slot the interpreter does."""
        from repro.core.isa import Instr
        from repro.core.program import Program

        instrs = [
            Instr(Op.ADDI, rd=1, ra=1, imm=1) for _ in range(8)
        ] + [Instr(Op.JMP, imm=-2)]
        program = Program("wild", tuple(instrs))
        ref, comp = _fresh_cores(program)
        for cycle in range(14):
            ref.step(cycle)
            comp.step(cycle)
            assert (ref.any_trapped() is None) == (
                comp.any_trapped() is None
            ), cycle
        assert comp.threads[0].state is ThreadState.TRAPPED
        assert ref.snapshot() == comp.snapshot()

    def test_bad_pc_after_fused_fallthrough(self):
        """Falling off the end of a fused unit traps at the exact slot
        the interpreter traps."""
        b = ProgramBuilder("edge")
        b.addi(1, 1, 1)
        b.addi(2, 2, 2)  # program ends on a pure run: pc runs off the end
        program = b.build()
        ref, comp = _fresh_cores(program)
        for cycle in range(6):
            ref.step(cycle)
            comp.step(cycle)
            assert (ref.any_trapped() is None) == (comp.any_trapped() is None)
        assert ref.snapshot() == comp.snapshot()
        assert comp.threads[0].state is ThreadState.TRAPPED
