"""The executor seam contract, enforced across every backend.

Any ``Executor`` implementation must return results in spec order,
byte-identical to the serial reference, and emit the standard telemetry
dialect.  These tests run the same assertions over the serial, process
pool, caching, and cluster backends so a new backend (or a regression in
an old one) fails the same way everywhere.
"""

import logging

import pytest

from repro.api import (
    CachingExecutor,
    Grid,
    ParallelExecutor,
    SerialExecutor,
    dumps_canonical,
)
from repro.cluster import ClusterExecutor
from repro.obs import ProgressState
from repro.system.machine import MachineConfig

CFG = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=8)

CELL_START_KEYS = {"type", "index", "total", "digest", "label", "worker", "t"}
CELL_DONE_KEYS = CELL_START_KEYS | {
    "seconds", "cpu_seconds", "rss_kb", "records",
}


def _specs():
    return Grid(
        components=("l2c", "mcu"),
        benchmarks=("fft",),
        seeds=(2015,),
        mode="injection",
        n=2,
        machine=CFG,
        scale=5e-6,
    ).specs()


BACKENDS = {
    "serial": lambda tmp_path: SerialExecutor(),
    "parallel": lambda tmp_path: ParallelExecutor(workers=2),
    "caching-serial": lambda tmp_path: CachingExecutor(
        tmp_path / "cache", SerialExecutor()
    ),
    "caching-parallel": lambda tmp_path: CachingExecutor(
        tmp_path / "cache", ParallelExecutor(workers=2)
    ),
    "cluster": lambda tmp_path: ClusterExecutor(
        workers=2, cache_dir=tmp_path / "bus", heartbeat_interval=0.2
    ),
}


@pytest.fixture(scope="module")
def serial_baseline():
    specs = _specs()
    return [dumps_canonical(r.to_dict()) for r in SerialExecutor().run(specs)]


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_matches_serial_baseline(backend, tmp_path, serial_baseline):
    specs = _specs()
    results = BACKENDS[backend](tmp_path).run(specs)
    # spec order: result i is the materialization of spec i
    assert [r.spec.digest() for r in results] == [s.digest() for s in specs]
    # byte identity: canonical JSON equals the serial reference
    assert [
        dumps_canonical(r.to_dict()) for r in results
    ] == serial_baseline


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_event_stream_contract(backend, tmp_path):
    specs = _specs()
    state = ProgressState(total=len(specs))
    events = []

    def on_event(event):
        events.append(event)
        state.handle(event)

    BACKENDS[backend](tmp_path).run(specs, on_event=on_event)

    starts = [e for e in events if e["type"] == "cell_start"]
    dones = [e for e in events if e["type"] == "cell_done"]
    assert len(starts) == len(specs)
    assert len(dones) == len(specs)
    for event in starts:
        assert set(event) == CELL_START_KEYS
        assert event["total"] == len(specs)
        assert event["digest"] == specs[event["index"]].digest()
    for event in dones:
        assert set(event) == CELL_DONE_KEYS
        assert event["records"] >= 1
    # the stream folds into a coherent, complete progress report
    report = state.report()
    assert report["done"] == len(specs)
    assert report["incomplete"] == []
    assert report["malformed_events"] == 0


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_backend_survives_raising_callback(backend, tmp_path, caplog,
                                           serial_baseline):
    """on_event consumers must never be able to break a sweep (and the
    first failure is logged once, not once per event)."""
    specs = _specs()

    def bomb(event):
        raise RuntimeError("observer went rogue")

    with caplog.at_level(logging.WARNING, logger="repro.api.executor"):
        results = BACKENDS[backend](tmp_path).run(specs, on_event=bomb)

    assert [
        dumps_canonical(r.to_dict()) for r in results
    ] == serial_baseline
    warnings = [
        r for r in caplog.records
        if r.name == "repro.api.executor"
        and "on_event callback raised" in r.getMessage()
    ]
    assert len(warnings) == 1
