"""Tests for RNG streams and rendering (repro.utils.rng / .render)."""

from repro.utils.render import render_percent, render_series, render_table
from repro.utils.rng import RngFactory


class TestRngFactory:
    def test_same_key_same_stream(self):
        f = RngFactory(42)
        a = f.stream("x", 1).random()
        b = f.stream("x", 1).random()
        assert a == b

    def test_different_keys_differ(self):
        f = RngFactory(42)
        assert f.stream("x").random() != f.stream("y").random()

    def test_order_independence(self):
        f1 = RngFactory(7)
        a1 = f1.stream("a").random()
        b1 = f1.stream("b").random()
        f2 = RngFactory(7)
        b2 = f2.stream("b").random()
        a2 = f2.stream("a").random()
        assert (a1, b1) == (a2, b2)

    def test_child_factories_deterministic(self):
        f = RngFactory(9)
        c1 = f.child("bench").stream("run", 3).random()
        c2 = RngFactory(9).child("bench").stream("run", 3).random()
        assert c1 == c2

    def test_different_root_seeds_differ(self):
        assert RngFactory(1).stream("k").random() != RngFactory(2).stream("k").random()


class TestRenderTable:
    def test_basic_alignment(self):
        text = render_table(["name", "value"], [["alpha", 12], ["b", 3]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "alpha" in lines[2]

    def test_title(self):
        text = render_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_right_aligned(self):
        text = render_table(["col"], [["1234"], ["5"]])
        rows = text.splitlines()[2:]
        assert rows[1].endswith("5")

    def test_row_width_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])


class TestRenderSeries:
    def test_contains_points(self):
        text = render_series("curve", [(1.0, 0.5), (10.0, 1.0)])
        assert "curve" in text
        assert "50.00%" in text

    def test_render_percent(self):
        assert render_percent(0.0332) == "3.32%"
