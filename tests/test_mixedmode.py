"""Tests for the mixed-mode platform and adapters (repro.mixedmode)."""

import random

import pytest

from repro.mixedmode.adapters import (
    CcxCosimAdapter,
    L2cCosimAdapter,
    McuCosimAdapter,
    PcieCosimAdapter,
    make_adapter,
)
from repro.mixedmode.performance import PerformanceModel, table2_model
from repro.mixedmode.platform import CosimConfig, MixedModePlatform
from repro.system.machine import Machine, MachineConfig
from repro.system.outcome import Outcome
from repro.workloads import build_workload

CFG = MachineConfig(cores=4, threads_per_core=2, l2_banks=8, l2_sets=16)


@pytest.fixture(scope="module")
def platform():
    return MixedModePlatform("fft", machine_config=CFG, scale=1 / 150_000)


@pytest.fixture(scope="module")
def pcie_platform():
    return MixedModePlatform(
        "blsc", machine_config=CFG, scale=1 / 100_000, pcie_input=True
    )


class TestGoldenRun:
    def test_golden_artifacts(self, platform):
        assert platform.golden.cycles > 0
        assert platform.golden.output
        assert 0 in platform.golden.snapshots

    def test_snapshot_lookup(self, platform):
        cycle, snap = platform.golden.snapshot_at_or_before(
            platform.golden.cycles - 1
        )
        assert cycle <= platform.golden.cycles - 1
        assert snap["cycle"] == cycle

    def test_pcie_window_present_for_dma_runs(self, pcie_platform):
        lo, hi = pcie_platform.golden.pcie_window
        assert hi > lo >= 0


class TestAdapters:
    def test_make_adapter_dispatch(self, platform):
        machine = platform.machine
        assert isinstance(make_adapter(machine, "l2c", 0), L2cCosimAdapter)
        assert isinstance(make_adapter(machine, "mcu", 0), McuCosimAdapter)
        assert isinstance(make_adapter(machine, "ccx"), CcxCosimAdapter)
        assert isinstance(make_adapter(machine, "pcie"), PcieCosimAdapter)
        with pytest.raises(ValueError):
            make_adapter(machine, "niu")

    def test_l2c_adapter_starts_clean(self, platform):
        adapter = L2cCosimAdapter(platform.machine, 0)
        status = adapter.compare()
        assert status.clean
        assert status.exitable

    def test_golden_dram_is_isolated(self, platform):
        adapter = L2cCosimAdapter(platform.machine, 0)
        before = platform.machine.dram.read_word(0x800000)
        adapter.golden_port.write_word(0x800000, 0x1234)
        assert platform.machine.dram.read_word(0x800000) == before

    def test_memory_divergence_detection(self, platform):
        adapter = L2cCosimAdapter(platform.machine, 0)
        adapter.target_port.write_word(0x800000, 1)
        adapter.golden_port.write_word(0x800000, 2)
        assert 0x800000 in adapter.memory_divergence()
        # symmetric restore for other tests
        adapter.target_port.write_word(0x800000, 0)

    def test_cache_corruption_words_named_by_golden(self, platform):
        adapter = L2cCosimAdapter(platform.machine, 0)
        # make a line resident in both, then corrupt the target's data
        from repro.mem.l2state import L2BankState

        state = L2BankState(0, platform.machine.amap, CFG.l2_ways)
        state.install(0x0, [3] * 8)
        adapter.target.load_state(state)
        adapter.golden.load_state(state)
        li = adapter.target._line_index(platform.machine.amap.set_of(0x0), 0)
        adapter.target.data_sram.write(li, adapter.target.data_sram.read(li) ^ 0xFF)
        words = adapter.cache_corruption_words()
        assert 0x0 in words


class TestInjectionRuns:
    def test_deterministic_given_same_inputs(self, platform):
        runs = []
        for _ in range(2):
            rng = random.Random(99)
            cycle, inst, bit = platform.sample_injection_point("l2c", rng)
            run = platform.run_injection("l2c", cycle, bit, instance=inst, rng=rng)
            runs.append((run.outcome, run.cosim.cosim_cycles, run.flip_location))
        assert runs[0] == runs[1]

    def test_perf_counter_flip_vanishes(self, platform):
        """A flip in a non-functional register must vanish quickly."""
        bits = platform.machine.l2banks  # force lazily-built structures
        from repro.uncore.l2c import L2cRtl

        probe = L2cRtl(0, platform.machine.amap, CFG.l2_ways, send_mcu=lambda r: None)
        target_bits = probe.target_bits()
        idx = next(
            i for i, (name, _e, _b) in enumerate(target_bits) if name == "perf_hits"
        )
        run = platform.run_injection("l2c", platform.golden.cycles // 2, idx)
        assert run.outcome is Outcome.VANISHED
        assert not run.ran_phase3

    def test_config_flip_persists(self, platform):
        """Config-register flips are exactly the Fig. 6 persistent class."""
        from repro.uncore.l2c import L2cRtl

        probe = L2cRtl(0, platform.machine.amap, CFG.l2_ways, send_mcu=lambda r: None)
        idx = next(
            i for i, (name, _e, _b) in enumerate(probe.target_bits())
            if name == "cfg_mode"
        )
        run = platform.run_injection(
            "l2c", platform.golden.cycles // 2, idx, cosim_cycle_cap=2_000
        )
        assert run.persistent
        assert run.outcome is None

    @pytest.mark.parametrize("component", ["l2c", "mcu", "ccx"])
    def test_each_component_injectable(self, platform, component):
        rng = random.Random(5)
        for _ in range(3):
            cycle, inst, bit = platform.sample_injection_point(component, rng)
            run = platform.run_injection(component, cycle, bit, instance=inst, rng=rng)
            assert run.persistent or run.outcome is not None

    def test_pcie_injection(self, pcie_platform):
        rng = random.Random(5)
        cycle, inst, bit = pcie_platform.sample_injection_point("pcie", rng)
        run = pcie_platform.run_injection("pcie", cycle, bit, instance=inst, rng=rng)
        assert run.persistent or run.outcome is not None

    def test_pcie_sampling_needs_window(self, platform):
        with pytest.raises(ValueError):
            platform.sample_injection_point("pcie", random.Random(0))

    def test_machine_structure_restored_after_run(self, platform):
        from repro.uncore.highlevel.l2c import HighLevelL2Bank

        rng = random.Random(3)
        cycle, inst, bit = platform.sample_injection_point("l2c", rng)
        platform.run_injection("l2c", cycle, bit, instance=inst, rng=rng)
        assert all(isinstance(b, HighLevelL2Bank) for b in platform.machine.l2banks)


class TestPerformanceModel:
    """Table 2 arithmetic."""

    def test_total_formula(self):
        model = PerformanceModel()
        # total = 70 + L/4M seconds
        assert model.seconds_per_run(400e6) == pytest.approx(70 + 400e6 / 4e6)

    def test_throughput_exceeds_2m_beyond_280m(self):
        model = PerformanceModel()
        assert model.throughput(281e6) > 2_000_000
        assert model.throughput(200e6) < 2_000_000

    def test_crossover_length_matches_paper(self):
        model = PerformanceModel()
        assert model.crossover_length(2_000_000) == pytest.approx(280e6, rel=0.01)

    def test_speedup_over_20000x(self):
        model = PerformanceModel()
        assert model.speedup_vs_rtl(300e6) > 20_000

    def test_table2_rows(self):
        rows = table2_model(400e6)
        assert rows[0].seconds == pytest.approx(50.0)
        assert rows[1].seconds == pytest.approx(20.0)
        assert rows[2].seconds == pytest.approx(400e6 / 4e6)

    def test_radix_case(self):
        """Paper: Radix at L=120M achieves about 1M cycles/sec."""
        model = PerformanceModel()
        assert model.throughput(120e6) == pytest.approx(1.2e6, rel=0.01)
