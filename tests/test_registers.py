"""Tests for RTL state-element primitives (repro.rtl.registers)."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl.registers import FlipFlopClass, Register, RegisterArray, SramArray


class TestRegister:
    def test_reset_value(self):
        reg = Register("r", 8, reset_value=0x5A)
        assert reg.value == 0x5A
        reg.write(0xFF)
        reg.reset()
        assert reg.value == 0x5A

    def test_write_truncates(self):
        reg = Register("r", 4)
        reg.write(0x1F)
        assert reg.value == 0xF

    def test_flip_is_involution(self):
        reg = Register("r", 16, reset_value=0x1234)
        reg.flip(3)
        reg.flip(3)
        assert reg.value == 0x1234

    def test_flip_changes_exactly_one_bit(self):
        reg = Register("r", 16, reset_value=0x1234)
        reg.flip(5)
        assert (reg.value ^ 0x1234) == (1 << 5)

    def test_flip_out_of_range(self):
        reg = Register("r", 4)
        with pytest.raises(IndexError):
            reg.flip(4)

    def test_snapshot_restore(self):
        reg = Register("r", 32)
        reg.write(0xDEAD)
        snap = reg.snapshot()
        reg.write(0)
        reg.restore(snap)
        assert reg.value == 0xDEAD

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Register("r", 0)
        with pytest.raises(ValueError):
            Register("r", 4, reset_value=0x10)

    def test_default_classification(self):
        reg = Register("r", 4)
        assert reg.ff_class is FlipFlopClass.TARGET
        assert reg.functional
        assert not reg.config

    @given(st.integers(1, 128), st.data())
    def test_flip_involution_property(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        bit = data.draw(st.integers(0, width - 1))
        reg = Register("r", width)
        reg.write(value)
        reg.flip(bit)
        assert reg.value != value
        reg.flip(bit)
        assert reg.value == value


class TestRegisterArray:
    def test_flip_flop_count(self):
        arr = RegisterArray("a", 8, 16)
        assert arr.flip_flops == 128

    def test_entry_isolation(self):
        arr = RegisterArray("a", 4, 8)
        arr.write(2, 0xAB)
        assert arr.read(2) == 0xAB
        assert arr.read(1) == 0

    def test_flip_entry(self):
        arr = RegisterArray("a", 4, 8)
        arr.flip(0, entry=3)
        assert arr.read(3) == 1
        assert arr.read(0) == 0

    def test_flip_bounds(self):
        arr = RegisterArray("a", 2, 4)
        with pytest.raises(IndexError):
            arr.flip(0, entry=2)
        with pytest.raises(IndexError):
            arr.flip(4, entry=0)

    def test_reset(self):
        arr = RegisterArray("a", 4, 8, reset_value=7)
        arr.write(0, 0xFF)
        arr.reset()
        assert list(arr) == [7, 7, 7, 7]

    def test_snapshot_restore_roundtrip(self):
        arr = RegisterArray("a", 4, 8)
        arr.write(1, 3)
        snap = arr.snapshot()
        arr.write(1, 9)
        arr.restore(snap)
        assert arr.read(1) == 3

    def test_restore_wrong_size(self):
        arr = RegisterArray("a", 4, 8)
        with pytest.raises(ValueError):
            arr.restore([0, 0])


class TestSramArray:
    def test_not_a_flip_flop_population(self):
        sram = SramArray("s", 16, 64)
        assert not hasattr(sram, "flip_flops")

    def test_write_read_masked(self):
        sram = SramArray("s", 4, 8)
        sram.write(0, 0x1FF)
        assert sram.read(0) == 0xFF

    def test_maps_to_highlevel_default(self):
        assert SramArray("s", 2, 2).maps_to_highlevel
        assert not SramArray("s", 2, 2, maps_to_highlevel=False).maps_to_highlevel

    def test_snapshot_restore(self):
        sram = SramArray("s", 3, 16)
        sram.write(2, 0xCAFE)
        snap = sram.snapshot()
        sram.write(2, 0)
        sram.restore(snap)
        assert sram.read(2) == 0xCAFE
