"""Shared configuration for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints it.
Sample counts are laptop-scale (the paper used >40,000 injections per
cell); the *shape* of each result is asserted, not the absolute values.
Set ``REPRO_BENCH_N`` to scale the injection counts up.
"""

import os

import pytest

from repro.system.machine import MachineConfig

#: injections per campaign cell (override with REPRO_BENCH_N)
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "60"))

#: machine configuration used across the benches
BENCH_CONFIG = MachineConfig(
    cores=8, threads_per_core=4, l2_banks=8, l2_sets=8, l2_ways=4
)

#: benchmark subset used for campaign benches (one per suite plus the
#: lock-heavy fluidanimate); the full 18 are exercised in the test suite
BENCH_WORKLOADS = ["fft", "flui", "p-sm"]


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG
