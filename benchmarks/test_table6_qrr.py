"""Benches for QRR: Table 6 overheads and Sec. 6.4 effectiveness."""

import pytest

from repro.mixedmode.platform import MixedModePlatform
from repro.physical import compute_table6
from repro.qrr.campaign import QrrCampaign
from repro.qrr.coverage import classify_coverage, improvement_factor
from repro.soc.address import AddressMap
from repro.uncore.l2c import L2cRtl
from repro.utils.render import render_table

from conftest import BENCH_CONFIG, BENCH_N


def test_table6_qrr_overhead(benchmark):
    t6 = benchmark.pedantic(compute_table6, rounds=1, iterations=1)
    q = t6.qrr
    rows = [
        ("Parity", f"{q.parity_area:.1%}", f"{q.parity_power:.1%}"),
        ("Hardening (selective)", f"{q.hardening_area:.1%}", f"{q.hardening_power:.1%}"),
        ("QRR controller + table", f"{q.controller_area:.1%}", f"{q.controller_power:.1%}"),
        ("QRR total (component)", f"{q.total_area:.1%}", f"{q.total_power:.1%}"),
        ("QRR total (chip)", f"{t6.qrr_chip_area:.2%}", f"{t6.qrr_chip_power:.2%}"),
        ("Hardening-only (component)", f"{t6.hardening_only_area:.1%}",
         f"{t6.hardening_only_power:.1%}"),
        ("Hardening-only (chip)", f"{t6.hardening_only_chip_area:.2%}",
         f"{t6.hardening_only_chip_power:.2%}"),
    ]
    print("\n" + render_table(
        ["Overhead", "Area", "Power"], rows, title="Table 6 (reproduced)"
    ))
    assert t6.qrr.total_area == pytest.approx(0.459, abs=0.005)
    assert t6.qrr_chip_area == pytest.approx(0.0332, abs=0.0005)
    assert t6.qrr_chip_power == pytest.approx(0.0609, abs=0.0005)
    assert t6.area_saving_vs_hardening == pytest.approx(0.23, abs=0.02)
    assert t6.power_saving_vs_hardening == pytest.approx(0.31, abs=0.02)


@pytest.mark.parametrize("component", ["l2c", "mcu"])
def test_qrr_effectiveness(benchmark, component):
    """Sec. 6.4: QRR recovers every parity-covered injection."""
    platform = MixedModePlatform(
        "flui", machine_config=BENCH_CONFIG, scale=1 / 100_000
    )
    campaign = QrrCampaign(platform, component)
    n = max(15, BENCH_N // 3)
    result = benchmark.pedantic(
        campaign.run, args=(n,), kwargs={"seed": 11}, rounds=1, iterations=1
    )
    print(f"\nQRR {component.upper()}: {result.recovered}/{result.injections} "
          f"recovered, {result.detected} detected, "
          f"max recovery {result.max_recovery_cycles} cycles "
          f"(paper: all recovered, < 5,000 cycles)")
    assert result.detected == result.injections
    assert result.recovered == result.injections, result.failures
    assert result.max_recovery_cycles < 5_000


def test_qrr_improvement_factor(benchmark):
    def build():
        coverage = classify_coverage(
            L2cRtl(0, AddressMap(l2_sets=16), 8, send_mcu=lambda r: None), "l2c"
        )
        return coverage, improvement_factor(coverage)

    coverage, factor = benchmark.pedantic(build, rounds=1, iterations=1)
    print(f"\nQRR improvement factor (footnote 15 arithmetic): {factor:,.0f}x "
          f"(paper: >100x; hardened fraction "
          f"{coverage.hardened_total / (coverage.target_ffs + coverage.qrr_controller):.1%})")
    assert factor > 100
