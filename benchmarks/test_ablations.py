"""Ablation benches for the platform's design choices (DESIGN.md Sec. 5).

1. Golden-copy early stop: disabling the Vanished early exit inflates
   co-simulated cycles dramatically (it is what makes >97% of runs cheap).
2. Snapshot interval Cf: phase-1 fast-forward length trades against
   snapshot count.
3. Co-simulation cycle cap: lowering it converts slow-converging runs
   into Persistent ones (the Fig. 6 trade-off).
"""

import random

from repro.injection.campaign import InjectionCampaign
from repro.mixedmode.platform import CosimConfig, MixedModePlatform
from repro.utils.render import render_table

from conftest import BENCH_CONFIG, BENCH_N


def test_ablation_early_stop(benchmark):
    """Compare co-simulated cycles with and without the early exit."""
    platform = MixedModePlatform(
        "fft", machine_config=BENCH_CONFIG, scale=1 / 150_000
    )
    n = max(15, BENCH_N // 3)

    def run_pair():
        rng = random.Random(4)
        points = [platform.sample_injection_point("l2c", rng) for _ in range(n)]
        with_stop = 0
        for cycle, inst, bit in points:
            run = platform.run_injection("l2c", cycle, bit, instance=inst)
            with_stop += run.cosim.cosim_cycles
        without_stop = 0
        for cycle, inst, bit in points:
            # forcing a tiny cap emulates "no early exit" cost accounting:
            # runs that would vanish in ~1 interval instead co-simulate
            # up to the cap
            run = platform.run_injection(
                "l2c", cycle, bit, instance=inst, cosim_cycle_cap=4_000
            )
            without_stop += (
                run.cosim.cosim_cycles if not run.cosim.vanished else 4_000
            )
        return with_stop, without_stop

    with_stop, without_stop = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print(f"\nearly-stop ablation: {with_stop:,} co-sim cycles with early "
          f"exit vs {without_stop:,} without ({without_stop / max(1, with_stop):.1f}x)")
    assert without_stop > with_stop


def test_ablation_snapshot_interval(benchmark):
    """Sweep Cf: larger intervals mean longer phase-1 fast-forwards."""

    def sweep():
        rows = []
        for cf in (1_000, 5_000, 20_000):
            platform = MixedModePlatform(
                "fft",
                machine_config=BENCH_CONFIG,
                cosim_config=CosimConfig(snapshot_interval=cf),
                scale=1 / 150_000,
            )
            snapshots = len(platform.golden.snapshots)
            # mean fast-forward distance for uniform injection cycles
            mean_ff = cf / 2 if platform.golden.cycles > cf else (
                platform.golden.cycles / 2
            )
            rows.append((cf, snapshots, int(mean_ff)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_table(
        ["Cf (cycles)", "snapshots stored", "mean fast-forward (cycles)"],
        rows,
        title="Ablation: snapshot interval (paper: Cf = 2M cycles)",
    ))
    assert rows[0][1] >= rows[-1][1]


def test_ablation_cosim_cap(benchmark):
    """Sweep the co-simulation cap (the paper's Sec. 4.2 trade-off)."""
    platform = MixedModePlatform(
        "flui", machine_config=BENCH_CONFIG, scale=1 / 120_000
    )
    n = max(20, BENCH_N // 2)

    def sweep():
        rows = []
        for cap in (500, 2_000, 8_000):
            rng = random.Random(9)
            persistent = 0
            for _ in range(n):
                cycle, inst, bit = platform.sample_injection_point("l2c", rng)
                run = platform.run_injection(
                    "l2c", cycle, bit, instance=inst, cosim_cycle_cap=cap
                )
                persistent += run.persistent
            rows.append((cap, persistent, f"{persistent / n:.1%}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_table(
        ["co-sim cap (cycles)", "persistent runs", "fraction"],
        rows,
        title=f"Ablation: co-simulation cycle cap, n={n}/point "
              "(paper: 1.8% of runs persist past 100K)",
    ))
    fractions = [r[1] for r in rows]
    assert fractions[0] >= fractions[-1]
