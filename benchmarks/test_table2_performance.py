"""Bench regenerating Table 2 (mixed-mode simulation performance)."""

from repro.mixedmode.performance import PerformanceModel, table2_model
from repro.utils.render import render_table


def test_table2_performance(benchmark):
    model = PerformanceModel()

    def build():
        rows = table2_model(app_cycles=400e6)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = [
        (r.step, f"{r.cycles:,.0f}", f"{r.rate:,.0f}", f"{r.seconds:.1f}")
        for r in rows
    ]
    table.append(
        ("Total", "-", "-", f"{model.seconds_per_run(400e6):.1f} (= 70 + L/4M)")
    )
    print("\n" + render_table(
        ["Step", "Cycles (avg)", "Rate (cyc/s)", "Seconds"],
        table,
        title="Table 2 (reproduced, paper's analytic model)",
    ))
    print(f"throughput @ L=400M: {model.throughput(400e6):,.0f} cycles/s")
    print(f"crossover (>2M cyc/s): L > {model.crossover_length():,.0f} cycles")
    print(f"speedup vs RTL-only:  {model.speedup_vs_rtl(400e6):,.0f}x")
    assert model.throughput(281e6) > 2_000_000
    assert model.speedup_vs_rtl(281e6) > 20_000
