"""Benches for the platform-accuracy figures (Fig. 5, Fig. 6, Fig. 7)."""

import pytest

from repro.injection.persistence import PersistenceProbe
from repro.mixedmode.platform import MixedModePlatform
from repro.mixedmode.validation import BUCKETS, ValidationExperiment
from repro.mixedmode.warmup import WarmupExperiment
from repro.system.machine import MachineConfig
from repro.utils.render import render_series, render_table

from conftest import BENCH_CONFIG, BENCH_N

SMALL = MachineConfig(cores=2, threads_per_core=2, l2_banks=8, l2_sets=16)


def test_fig5_warmup_convergence(benchmark):
    exp = WarmupExperiment(machine_config=SMALL, scale=1 / 300_000)
    result = benchmark.pedantic(
        exp.run, kwargs={"runs": 4, "horizon": 400}, rounds=1, iterations=1
    )
    print("\n" + render_series(
        "Fig. 5 (reproduced): microarchitectural state difference vs "
        "warm-up cycles (L2C)",
        result.series(points=9),
        y_format="{:.3%}",
    ))
    assert result.diff_after(0) > result.diff_after(result.horizon - 1)
    # paper: < 0.2% difference once warmed up
    assert result.diff_after(result.horizon - 1) < 0.002


@pytest.mark.parametrize("component", ["l2c", "mcu", "ccx"])
def test_fig6_persistence(benchmark, component):
    platform = MixedModePlatform(
        "flui", machine_config=BENCH_CONFIG, scale=1 / 120_000
    )
    probe = PersistenceProbe(platform, component)
    result = benchmark.pedantic(
        probe.run,
        kwargs={"n_flip_flops": max(20, BENCH_N // 3), "cap": 5_000, "seed": 6},
        rounds=1, iterations=1,
    )
    print("\n" + render_series(
        f"Fig. 6 (reproduced, {component.upper()}): fraction of flip-flops "
        "whose errors persist beyond N co-simulation cycles",
        result.decade_series(max_exponent=4),
    ))
    # paper: a small minority of flip-flops (2-4%) persist past the cap
    assert result.fraction_persisting_beyond(result.cap - 1) < 0.25
    series = [f for _x, f in result.decade_series(max_exponent=4)]
    assert all(a >= b for a, b in zip(series, series[1:]))


def test_fig7_validation(benchmark):
    exp = ValidationExperiment(machine_config=SMALL, scale=1 / 400_000)
    n = max(20, BENCH_N // 2)
    result = benchmark.pedantic(exp.run, args=(n,), rounds=1, iterations=1)
    rows = []
    for bucket in BUCKETS:
        r = result.rtl_only.rate(bucket)
        m = result.mixed.rate(bucket)
        ratio = result.ratio(bucket)
        rows.append((
            bucket, f"{r.rate:.2%}", f"{m.rate:.2%}",
            f"{ratio:.2f}x" if ratio is not None else "n/a",
        ))
    print("\n" + render_table(
        ["Outcome", "RTL-only", "Mixed-mode", "ratio"],
        rows,
        title=f"Fig. 7 (reproduced): RTL-only vs mixed-mode, n={n}/arm "
              "(paper: 0.9-1.1x with 40,000/arm)",
    ))
    # both arms must see mostly-vanished behaviour; with laptop-scale n
    # the CIs are wide, so assert compatibility rather than tight ratios
    total_r = sum(result.rtl_only.rate(b).rate for b in BUCKETS)
    total_m = sum(result.mixed.rate(b).rate for b in BUCKETS)
    assert total_r < 0.5 and total_m < 0.5
