"""Benches regenerating Fig. 3 (outcome rates) and Fig. 4 (OMM comparison).

Shape assertions mirror the paper's findings: the overwhelming majority
of uncore flips vanish (>97% at paper scale), non-Vanished outcomes are
a few percent at most, and uncore OMM rates are the same order of
magnitude as published processor-core rates.
"""

import pytest

from repro.analysis.figures import fig3_outcome_rates, fig4_omm_comparison
from repro.system.outcome import OUTCOME_ORDER, Outcome
from repro.utils.render import render_table

from conftest import BENCH_CONFIG, BENCH_N, BENCH_WORKLOADS

_RESULTS = {}


def _run_panel(component, benchmarks=None, pcie=False):
    names = benchmarks if benchmarks else BENCH_WORKLOADS
    if pcie:
        names = [b for b in ("blsc", "flui", "p-sm") if b]
    return fig3_outcome_rates(
        component,
        names,
        n_injections=BENCH_N,
        machine_config=BENCH_CONFIG,
        scale=1 / 50_000,
    )


@pytest.mark.parametrize("component", ["l2c", "mcu", "ccx", "pcie"])
def test_fig3_panel(benchmark, component):
    result = benchmark.pedantic(
        _run_panel, args=(component,), kwargs={"pcie": component == "pcie"},
        rounds=1, iterations=1,
    )
    _RESULTS[component] = result
    headers = ["benchmark"] + [o.value for o in OUTCOME_ORDER]
    rows = [cell.result.table.row() for cell in result.cells]
    mean_row = ["avg."] + [
        f"{result.mean_rate(o):.2%}" for o in OUTCOME_ORDER
    ]
    rows.append(mean_row)
    print("\n" + render_table(
        headers, rows, title=f"Fig. 3 ({component.upper()}) -- reproduced"
    ))
    print(f"mean erroneous (non-Vanished): {result.mean_erroneous():.2%} "
          f"(paper: L2C 1.4%, MCU 1.7%, CCX 2.2%, PCIe 1.7%)")
    # shape: vanished dominates, erroneous in the paper's order of magnitude
    assert result.mean_rate(Outcome.VANISHED) > 0.85
    assert result.mean_erroneous() < 0.15


def test_fig4_omm_comparison(benchmark):
    def build():
        # reuse the fig3 campaigns when available; otherwise run l2c
        if "l2c" not in _RESULTS:
            _RESULTS["l2c"] = _run_panel("l2c")
        return fig4_omm_comparison(_RESULTS)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + render_table(
        ["Component", "OMM rate", "Kind"],
        [(n, f"{r:.2%}", k) for n, r, k in rows],
        title="Fig. 4 (reproduced): uncore vs processor-core OMM rates",
    ))
    uncore = [r for _n, r, k in rows if k == "uncore"]
    cores = [r for _n, r, k in rows if k == "core"]
    assert cores, "literature core rates must be present"
    # same order of magnitude: every uncore OMM rate below the largest
    # published core rate x 3 (the paper's Fig. 4 comparability claim)
    assert all(u <= max(cores) * 3 for u in uncore)
