"""Benches regenerating the inventory tables (Tables 1, 3, 4, 5)."""

from repro.analysis.tables import (
    table1_highlevel_state,
    table3_inventory,
    table4_targets,
    table5_benchmarks,
)
from repro.soc.geometry import T2_GEOMETRY
from repro.system.machine import Machine
from repro.utils.render import render_table
from repro.workloads import ALL_BENCHMARKS, build_workload

from conftest import BENCH_CONFIG


def test_table1_highlevel_state(benchmark):
    headers, rows = benchmark.pedantic(
        table1_highlevel_state, rounds=1, iterations=1
    )
    print("\n" + render_table(headers, rows, title="Table 1 (reproduced)"))
    assert any("4GB" in str(r) for r in rows)


def test_table3_inventory(benchmark):
    headers, rows = benchmark.pedantic(table3_inventory, rounds=1, iterations=1)
    print("\n" + render_table(headers, rows, title="Table 3 (reproduced)"))
    by_name = {r[0]: r for r in rows}
    for comp in ("l2c", "mcu", "ccx", "pcie"):
        spec = T2_GEOMETRY[comp]
        assert by_name[spec.long_name][2] == spec.flip_flops


def test_table4_targets(benchmark):
    headers, rows = benchmark.pedantic(table4_targets, rounds=1, iterations=1)
    print("\n" + render_table(headers, rows, title="Table 4 (reproduced)"))
    fractions = {r[0].split()[0]: r[1] for r in rows}
    assert "18369" in fractions["L2C"] and "58.0%" in fractions["L2C"]
    # 12007/18068 = 66.45%: the paper prints 66.4%, banker's rounding 66.5%
    assert "12007" in fractions["MCU"]
    assert "41181" in fractions["CCX"] and "99.2%" in fractions["CCX"]
    assert "23483" in fractions["PCIE"] and "80.9%" in fractions["PCIE"]


def test_table5_benchmarks(benchmark):
    def measure():
        measured = {}
        for short in ALL_BENCHMARKS:
            machine = Machine(BENCH_CONFIG)
            machine.load_workload(
                build_workload(short, threads=BENCH_CONFIG.total_threads,
                               scale=1 / 60_000)
            )
            result = machine.run(max_cycles=2_000_000)
            assert result.completed, short
            measured[short] = result.cycles
        return measured

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    headers, rows = table5_benchmarks(measured)
    print("\n" + render_table(headers, rows, title="Table 5 (reproduced, scaled)"))
    assert len(measured) == 18
