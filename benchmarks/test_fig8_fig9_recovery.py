"""Benches for the checkpoint-recovery figures (Fig. 8, Fig. 9)."""

from repro.injection.campaign import InjectionCampaign
from repro.mixedmode.platform import MixedModePlatform
from repro.recovery.propagation import PropagationAnalysis
from repro.recovery.rollback import RollbackAnalysis
from repro.utils.render import render_series

from conftest import BENCH_CONFIG, BENCH_N

_CAMPAIGNS = {}


def _campaigns():
    """Shared L2C+MCU campaigns over a store-heavy workload."""
    if not _CAMPAIGNS:
        platform = MixedModePlatform(
            "flui", machine_config=BENCH_CONFIG, scale=1 / 25_000
        )
        for component in ("l2c", "mcu"):
            campaign = InjectionCampaign(platform, component, seed=8)
            _CAMPAIGNS[component] = campaign.run(max(BENCH_N * 3, 180))
    return _CAMPAIGNS


def test_fig8_propagation_latency(benchmark):
    campaigns = benchmark.pedantic(_campaigns, rounds=1, iterations=1)
    printed = False
    for component in ("l2c", "mcu"):
        analysis = PropagationAnalysis.from_campaigns(
            component, [campaigns[component]]
        )
        if not analysis.samples:
            continue
        printed = True
        print("\n" + render_series(
            f"Fig. 8 (reproduced, {component.upper()}): propagation-latency "
            f"CDF ({len(analysis.samples)} propagating errors, "
            f"mean {analysis.mean:,.0f} cycles)",
            analysis.decade_series(max_exponent=5),
        ))
        # the paper's point: propagation can take a large fraction of
        # the run -- the CDF must not be concentrated at tiny latencies
        # (meaningful only once the sample is non-degenerate)
        if len(analysis.samples) >= 5:
            assert analysis.cdf().fraction_at_most(10) < 1.0
    if not printed:
        print("\nFig. 8: no propagating errors in this sample "
              "(rate ~1-2%); increase REPRO_BENCH_N for the CDF")


def test_fig9_rollback_distance(benchmark):
    campaigns = benchmark.pedantic(_campaigns, rounds=1, iterations=1)
    printed = False
    for component in ("l2c", "mcu"):
        analysis = RollbackAnalysis.from_campaigns(
            component, [campaigns[component]]
        )
        if not analysis.samples:
            continue
        printed = True
        print("\n" + render_series(
            f"Fig. 9 (reproduced, {component.upper()}): required rollback "
            f"distance CDF ({len(analysis.samples)} memory-corrupting errors)",
            analysis.decade_series(max_exponent=5),
        ))
        # the paper's point: covering ~99% of corruptions needs rollback
        # over a large fraction of the run length
        if len(analysis.samples) >= 5:
            assert max(analysis.samples) > 100
    if not printed:
        print("\nFig. 9: no memory corruptions in this sample "
              "(rate <1%); increase REPRO_BENCH_N for the CDF")
